package trace

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTraceFile writes n pseudo-random records and returns the path
// and the records themselves.
func writeTraceFile(t *testing.T, dir string, n int, seed int64) (string, []Inst) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	insts := make([]Inst, n)
	for i := range insts {
		insts[i] = Inst{
			PC:     rng.Uint64(),
			Addr:   rng.Uint64(),
			DataPC: rng.Uint64(),
			Dep1:   uint16(rng.Intn(1 << 16)),
			Dep2:   uint16(rng.Intn(1 << 16)),
			Class:  Class(rng.Intn(int(numClasses))),
			BB:     rng.Uint32(),
		}
		insts[i].Mispredict = insts[i].Class == Branch && rng.Intn(4) == 0
	}
	path := filepath.Join(dir, "t.mlt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if err := w.Write(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, insts
}

// TestFileRoundTrip is the write/read property over a real file:
// every record survives byte-identically through the file codec.
func TestFileRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		path, insts := writeTraceFile(t, t.TempDir(), n, int64(n)+1)
		f, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		var got Inst
		for i := range insts {
			if !f.Next(&got) {
				t.Fatalf("n=%d: stream ended at %d", n, i)
			}
			if got != insts[i] {
				t.Fatalf("n=%d record %d: got %+v want %+v", n, i, got, insts[i])
			}
		}
		if f.Next(&got) {
			t.Fatalf("n=%d: extra record", n)
		}
		if err := f.Err(); err != nil {
			t.Fatalf("n=%d: clean trace reported %v", n, err)
		}
		if f.Count() != uint64(n) {
			t.Fatalf("n=%d: count %d", n, f.Count())
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTruncatedTraceSurfacesError pins the headline fix: a file cut
// mid-record must report an error from Err, not end as a clean
// shorter trace.
func TestTruncatedTraceSurfacesError(t *testing.T) {
	path, _ := writeTraceFile(t, t.TempDir(), 10, 3)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the last record in half.
	if err := os.Truncate(path, info.Size()-recordSize/2); err != nil {
		t.Fatal(err)
	}

	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var inst Inst
	n := 0
	for f.Next(&inst) {
		n++
	}
	if n != 9 {
		t.Fatalf("read %d whole records, want 9", n)
	}
	err = f.Err()
	if err == nil {
		t.Fatal("truncated trace read as a clean run")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF in the chain, got %v", err)
	}
	if !strings.Contains(err.Error(), "truncated") || !strings.Contains(err.Error(), "9") {
		t.Fatalf("error should name truncation and the record count: %v", err)
	}
}

func TestOpenRejectsBadMagicAndMissing(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.mlt")
	if err := os.WriteFile(bad, []byte("NOPE-not-a-trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	if _, err := Open(filepath.Join(dir, "absent.mlt")); err == nil {
		t.Fatal("missing file must error")
	}
	if _, err := HashFile(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("HashFile bad magic: got %v", err)
	}
	if _, err := HashFile(filepath.Join(dir, "absent.mlt")); err == nil {
		t.Fatal("HashFile on missing file must error")
	}
}

// TestHashFileIsContentIdentity: equal bytes hash equal, any content
// change hashes different, and the path plays no part.
func TestHashFileIsContentIdentity(t *testing.T) {
	dir := t.TempDir()
	a, _ := writeTraceFile(t, dir, 50, 7)
	h1, err := HashFile(a)
	if err != nil {
		t.Fatal(err)
	}
	// Same content at a different path.
	data, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(dir, "copy.mlt")
	if err := os.WriteFile(b, data, 0o644); err != nil {
		t.Fatal(err)
	}
	h2, err := HashFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("same content, different hash: %s vs %s", h1, h2)
	}
	// Flip one payload byte.
	data[len(data)-1] ^= 1
	if err := os.WriteFile(b, data, 0o644); err != nil {
		t.Fatal(err)
	}
	h3, err := HashFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("changed content kept its hash")
	}
}

// TestHashFileRejectsPartialRecords: a file cut mid-record fails at
// hash time, before any plan or simulation trusts it.
func TestHashFileRejectsPartialRecords(t *testing.T) {
	path, _ := writeTraceFile(t, t.TempDir(), 20, 11)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-1); err != nil {
		t.Fatal(err)
	}
	if _, err := HashFile(path); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncation error, got %v", err)
	}
}

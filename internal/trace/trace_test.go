package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	insts := []Inst{
		{PC: 0x400000, Class: IntALU, Dep1: 3, BB: 7},
		{PC: 0x400004, Class: Load, Addr: 0x10000000, DataPC: 0xf00000, Dep1: 1, Dep2: 2},
		{PC: 0x400008, Class: Branch, Mispredict: true, BB: 8},
		{PC: 0x40000c, Class: Store, Addr: 0xdeadbeef &^ 7},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if err := w.Write(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(insts)) {
		t.Fatalf("count %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Inst
	for i := range insts {
		if !r.Next(&got) {
			t.Fatalf("stream ended at %d", i)
		}
		if got != insts[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got, insts[i])
		}
	}
	if r.Next(&got) {
		t.Fatal("extra record")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

// TestPropertyRoundTrip fuzzes the binary codec.
func TestPropertyRoundTrip(t *testing.T) {
	err := quick.Check(func(pc, addr, dataPC uint64, d1, d2 uint16, cls uint8, mp bool, bb uint32) bool {
		in := Inst{
			PC: pc, Addr: addr, DataPC: dataPC,
			Dep1: d1, Dep2: d2,
			Class:      Class(cls % uint8(numClasses)),
			Mispredict: mp, BB: bb,
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		w.Write(&in)
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var out Inst
		return r.Next(&out) && out == in
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE1234"))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestSkipAndLimit(t *testing.T) {
	var insts []Inst
	for i := 0; i < 10; i++ {
		insts = append(insts, Inst{PC: uint64(i)})
	}
	s := Limit(Skip(&SliceStream{Insts: insts}, 3), 4)
	var got []uint64
	var inst Inst
	for s.Next(&inst) {
		got = append(got, inst.PC)
	}
	want := []uint64{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSpecApply(t *testing.T) {
	var insts []Inst
	for i := 0; i < 20; i++ {
		insts = append(insts, Inst{PC: uint64(i)})
	}
	s := Spec{Skip: 5, Insts: 3}.Apply(&SliceStream{Insts: insts})
	var inst Inst
	n := 0
	for s.Next(&inst) {
		n++
	}
	if n != 3 {
		t.Fatalf("spec produced %d insts", n)
	}
}

func TestMemPC(t *testing.T) {
	i := Inst{PC: 0x400000}
	if i.MemPC() != 0x400000 {
		t.Fatal("MemPC without DataPC")
	}
	i.DataPC = 0xf00000
	if i.MemPC() != 0xf00000 {
		t.Fatal("MemPC with DataPC")
	}
}

func TestClassProperties(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() || IntALU.IsMem() {
		t.Fatal("IsMem wrong")
	}
	for c := IntALU; c < numClasses; c++ {
		if c.Latency() == 0 {
			t.Fatalf("class %v has zero latency", c)
		}
		if c.String() == "?" {
			t.Fatalf("class %d unnamed", c)
		}
	}
}

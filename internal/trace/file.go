package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
)

// File is a trace file opened for replay. It implements Stream; the
// caller must Close it and should check Err after the stream ends —
// a truncated file surfaces there, not as a clean shorter run.
type File struct {
	f *os.File
	r *Reader
}

// Open validates the header of a recorded trace and returns it as a
// replayable stream.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return &File{f: f, r: r}, nil
}

// Next implements Stream.
func (f *File) Next(inst *Inst) bool { return f.r.Next(inst) }

// Err returns the terminal read error, if any (see Reader.Err).
func (f *File) Err() error { return f.r.Err() }

// Count returns the number of records decoded so far.
func (f *File) Count() uint64 { return f.r.Count() }

// Close releases the underlying file.
func (f *File) Close() error { return f.f.Close() }

// HashFile returns the hex SHA-256 of the file's full content after
// validating the trace magic. It is the content identity of a
// recorded workload: the runner fingerprint folds it in, so a cache
// entry can never be served for a trace whose bytes changed.
func HashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	var m [4]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return "", fmt.Errorf("trace: %s: %w", path, err)
	}
	if m != magic {
		return "", fmt.Errorf("trace: %s: %w", path, ErrBadMagic)
	}
	h := sha256.New()
	h.Write(m[:])
	n, err := io.Copy(h, f)
	if err != nil {
		return "", fmt.Errorf("trace: %s: %w", path, err)
	}
	// A well-formed trace is the header plus whole records; anything
	// else is a truncated or torn file, rejected here — at
	// plan/record time — rather than trusted until (and only if) a
	// simulation happens to read past the damage.
	if n%recordSize != 0 {
		return "", fmt.Errorf("trace: %s: truncated: %d bytes after the header is not a whole number of %d-byte records",
			path, n, recordSize)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Package refdata holds the golden validation numbers the Figure 2
// experiment compares against.
//
// The paper validated its TK, TCP and TKVC implementations against
// the speedup graphs printed in the original articles; those graphs
// are not available in this environment, so the goldens here are a
// frozen snapshot of this repository's own fixed implementations
// under the validation configuration (constant 70-cycle memory,
// skip/simulate trace selection). The comparison plays the same
// methodological role — detecting divergence from the validated
// state — and EXPERIMENTS.md documents the substitution.
package refdata

// Validation maps benchmark -> mechanism -> reference speedup under
// the validation configuration. Populated by data.go (regenerate
// with `mlrank -exp genref`).
var Validation map[string]map[string]float64

package refdata

import (
	"testing"

	"microlib/internal/core"
	_ "microlib/internal/mech/all" // register every mechanism
	"microlib/internal/workload"
)

// refMechs are the mechanisms the Figure 2 validation covers (the
// three the paper validated against their original articles).
var refMechs = []string{"TK", "TKVC", "TCP"}

func TestValidationCoversEveryBenchmark(t *testing.T) {
	if Validation == nil {
		t.Fatal("Validation table not populated")
	}
	names := workload.Names()
	if len(Validation) != len(names) {
		t.Errorf("table has %d benchmarks, workload registry has %d", len(Validation), len(names))
	}
	for _, b := range names {
		if _, ok := Validation[b]; !ok {
			t.Errorf("benchmark %s missing from the validation table", b)
		}
	}
	for b := range Validation {
		found := false
		for _, n := range names {
			if n == b {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("table row %q is not a registered benchmark", b)
		}
	}
}

func TestValidationRowsAreComplete(t *testing.T) {
	for bench, row := range Validation {
		if len(row) != len(refMechs) {
			t.Errorf("%s: %d mechanisms, want %d", bench, len(row), len(refMechs))
		}
		for _, m := range refMechs {
			if _, ok := row[m]; !ok {
				t.Errorf("%s: missing reference for %s", bench, m)
			}
		}
	}
}

func TestValidationMechanismsAreRegistered(t *testing.T) {
	for _, m := range refMechs {
		if _, ok := core.Describe(m); !ok {
			t.Errorf("reference mechanism %s is not registered", m)
		}
	}
}

func TestValidationValuesAreSane(t *testing.T) {
	// Goldens are speedups of real mechanisms on a working memory
	// hierarchy: tightly around 1.0. A value far outside means the
	// table was regenerated against a broken build.
	for bench, row := range Validation {
		for mech, v := range row {
			if v < 0.9 || v > 1.2 {
				t.Errorf("%s/%s: implausible reference speedup %v", bench, mech, v)
			}
		}
	}
}

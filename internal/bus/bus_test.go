package bus

import "testing"

func TestTransferCycles(t *testing.T) {
	b := New("fsb", 64, 5)
	cases := []struct {
		bytes, want uint64
	}{
		{64, 5}, {65, 10}, {128, 10}, {1, 5}, {0, 5},
	}
	for _, c := range cases {
		if got := b.TransferCycles(c.bytes); got != c.want {
			t.Errorf("TransferCycles(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestReserveSerializes(t *testing.T) {
	b := New("l1l2", 32, 1)
	d1 := b.Reserve(10, 32) // 1 cycle
	if d1 != 11 {
		t.Fatalf("first transfer done at %d, want 11", d1)
	}
	d2 := b.Reserve(10, 32) // queues behind the first
	if d2 != 12 {
		t.Fatalf("second transfer done at %d, want 12", d2)
	}
	if !b.Busy(11) || b.Busy(12) {
		t.Fatal("busy window wrong")
	}
}

func TestReserveAfterIdle(t *testing.T) {
	b := New("x", 8, 2)
	b.Reserve(0, 8)
	d := b.Reserve(100, 8)
	if d != 102 {
		t.Fatalf("idle-bus transfer done at %d, want 102", d)
	}
}

func TestStats(t *testing.T) {
	b := New("x", 8, 1)
	b.Reserve(0, 8)
	b.Reserve(0, 8) // waits 1
	n, busy, wait := b.Stats()
	if n != 2 || busy != 2 || wait != 1 {
		t.Fatalf("stats %d %d %d, want 2 2 1", n, busy, wait)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero width did not panic")
		}
	}()
	New("bad", 0, 1)
}

package bus

// State is the full mutable state of a Bus, in serializable form, for
// warm-state checkpointing. Geometry (width, clock ratio) is
// configuration, not state: a restored bus is rebuilt from the same
// config and only these fields are overwritten.
type State struct {
	FreeAt     uint64
	Transfers  uint64
	BusyCycles uint64
	WaitCycles uint64
}

// State captures the bus's mutable fields.
func (b *Bus) State() State {
	return State{
		FreeAt:     b.freeAt,
		Transfers:  b.transfers,
		BusyCycles: b.busyCycles,
		WaitCycles: b.waitCycles,
	}
}

// SetState overwrites the bus's mutable fields from a snapshot.
func (b *Bus) SetState(st State) {
	b.freeAt = st.FreeAt
	b.transfers = st.Transfers
	b.busyCycles = st.BusyCycles
	b.waitCycles = st.WaitCycles
}

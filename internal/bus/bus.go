// Package bus models the two interconnects of the Table 1 system:
// the L1/L2 bus (32 bytes wide at the 2 GHz core clock) and the
// front-side bus to memory (64 bytes wide at 400 MHz). A bus is a
// simple serially-occupied resource: a transfer holds it for
// ceil(bytes/width) bus cycles, expressed in CPU cycles.
package bus

// Bus is a single shared interconnect. The zero value is unusable;
// construct with New.
type Bus struct {
	name              string
	widthBytes        uint64
	cpuCyclesPerCycle uint64
	freeAt            uint64

	transfers  uint64
	busyCycles uint64
	waitCycles uint64
}

// New builds a bus. widthBytes is the per-bus-cycle payload and
// cpuCyclesPerCycle converts bus cycles to CPU cycles (e.g. 5 for a
// 400 MHz bus under a 2 GHz core).
func New(name string, widthBytes, cpuCyclesPerCycle uint64) *Bus {
	if widthBytes == 0 || cpuCyclesPerCycle == 0 {
		panic("bus: invalid geometry")
	}
	return &Bus{name: name, widthBytes: widthBytes, cpuCyclesPerCycle: cpuCyclesPerCycle}
}

// Name returns the bus label.
func (b *Bus) Name() string { return b.name }

// TransferCycles returns the occupancy, in CPU cycles, of moving
// nbytes across the bus.
func (b *Bus) TransferCycles(nbytes uint64) uint64 {
	cycles := (nbytes + b.widthBytes - 1) / b.widthBytes
	if cycles == 0 {
		cycles = 1
	}
	return cycles * b.cpuCyclesPerCycle
}

// Reserve books the bus for a transfer of nbytes starting no earlier
// than now, returning the cycle at which the transfer completes. The
// caller observes the wait implicitly through the returned time.
//
//ml:hotpath
func (b *Bus) Reserve(now, nbytes uint64) (done uint64) {
	start := now
	if b.freeAt > start {
		start = b.freeAt
	}
	b.waitCycles += start - now
	occ := b.TransferCycles(nbytes)
	b.freeAt = start + occ
	b.transfers++
	b.busyCycles += occ
	return b.freeAt
}

// Busy reports whether the bus is occupied at the given cycle.
func (b *Bus) Busy(now uint64) bool { return b.freeAt > now }

// FreeAt returns the cycle the bus next becomes free.
func (b *Bus) FreeAt() uint64 { return b.freeAt }

// Stats returns cumulative counters: completed transfers, total busy
// CPU cycles, and total CPU cycles requests spent waiting for the
// bus.
func (b *Bus) Stats() (transfers, busyCycles, waitCycles uint64) {
	return b.transfers, b.busyCycles, b.waitCycles
}

package hier

import (
	"microlib/internal/bus"
	"microlib/internal/cache"
	"microlib/internal/mem"
	"microlib/internal/sim"
)

// l2Backend carries L1 misses across the L1/L2 bus into the unified
// L2. Both L1 caches share one instance's bus but use per-cache
// wrappers that know their own line size for the data return.
type l2Backend struct {
	eng *sim.Engine
	bus *bus.Bus
	l2  *cache.Cache
}

// l1DataBackend is the per-L1 view of the shared l2Backend.
type l1DataBackend struct {
	*l2Backend
	lineSize uint64
}

// Fetch implements cache.Backend for an L1 cache.
func (b *l1DataBackend) Fetch(lineAddr, pc uint64, prefetch bool, done func(now uint64)) bool {
	now := b.eng.Now()
	if prefetch && b.bus.Busy(now) {
		return false // prefetches only use an idle bus
	}
	// Command transfer to L2 (one bus beat), then the L2 lookup, then
	// the line returns across the bus.
	cmdDone := b.bus.Reserve(now, 8)
	b.eng.At(cmdDone, func() { b.submit(lineAddr, pc, done) })
	return true
}

func (b *l1DataBackend) submit(lineAddr, pc uint64, done func(now uint64)) {
	acc := &cache.Access{
		Addr: lineAddr,
		PC:   pc,
		Done: func(t uint64, hit bool) {
			dataDone := b.bus.Reserve(t, b.lineSize)
			b.eng.At(dataDone, func() { done(dataDone) })
		},
	}
	if !b.l2.Access(acc) {
		b.eng.After(1, func() { b.submit(lineAddr, pc, done) })
	}
}

// WriteBack implements cache.Backend: dirty L1 lines move across the
// bus and update (write-allocate) the L2.
func (b *l1DataBackend) WriteBack(lineAddr uint64) bool {
	now := b.eng.Now()
	dataDone := b.bus.Reserve(now, b.lineSize)
	b.eng.At(dataDone, func() { b.submitWB(lineAddr) })
	return true
}

func (b *l1DataBackend) submitWB(lineAddr uint64) {
	acc := &cache.Access{Addr: lineAddr, Write: true}
	if !b.l2.Access(acc) {
		b.eng.After(1, func() { b.submitWB(lineAddr) })
	}
}

// FreeAtHint implements cache.Backend.
func (b *l1DataBackend) FreeAtHint() uint64 { return b.bus.FreeAt() }

// memBackend carries L2 misses across the front-side bus into the
// SDRAM controller.
type memBackend struct {
	eng      *sim.Engine
	fsb      *bus.Bus
	m        mem.Model
	lineSize uint64
}

// Fetch implements cache.Backend for the L2. The SDRAM burst already
// occupies the DRAM data bus (which is the front-side bus for a
// direct-attached controller), so the return path is not charged a
// second time; prefetch admission is controlled by the memory
// controller's queue policy.
func (b *memBackend) Fetch(lineAddr, pc uint64, prefetch bool, done func(now uint64)) bool {
	req := &mem.Req{
		Addr:     lineAddr,
		Size:     uint32(b.lineSize),
		Prefetch: prefetch,
		Done:     done,
	}
	return b.m.Enqueue(req)
}

// WriteBack implements cache.Backend: the dirty line crosses the FSB
// and is retired by the controller.
func (b *memBackend) WriteBack(lineAddr uint64) bool {
	dataDone := b.fsb.Reserve(b.eng.Now(), b.lineSize)
	req := &mem.Req{Addr: lineAddr, Size: uint32(b.lineSize), Write: true}
	if !b.m.Enqueue(req) {
		// Queue full: retry the controller entry once the bus beat
		// lands; the bus reservation already happened (data is in
		// flight) so this models controller-side buffering.
		b.eng.At(dataDone, func() { b.retryWB(req) })
	}
	return true
}

func (b *memBackend) retryWB(req *mem.Req) {
	if !b.m.Enqueue(req) {
		b.eng.After(4, func() { b.retryWB(req) })
	}
}

// FreeAtHint implements cache.Backend.
func (b *memBackend) FreeAtHint() uint64 {
	at := b.fsb.FreeAt()
	if n := b.eng.Now() + 4; n > at {
		return n
	}
	return at
}

// constBackend is the SimpleScalar-style memory path: no bus, no
// queue, a flat constant latency, unlimited concurrency.
type constBackend struct {
	eng *sim.Engine
	m   mem.Model
}

// Fetch implements cache.Backend.
func (b *constBackend) Fetch(lineAddr, pc uint64, prefetch bool, done func(now uint64)) bool {
	return b.m.Enqueue(&mem.Req{Addr: lineAddr, Size: 64, Prefetch: prefetch, Done: done})
}

// WriteBack implements cache.Backend.
func (b *constBackend) WriteBack(lineAddr uint64) bool {
	return b.m.Enqueue(&mem.Req{Addr: lineAddr, Size: 64, Write: true})
}

// FreeAtHint implements cache.Backend.
func (b *constBackend) FreeAtHint() uint64 { return b.eng.Now() + 1 }

package hier

import (
	"microlib/internal/bus"
	"microlib/internal/cache"
	"microlib/internal/mem"
	"microlib/internal/sim"
)

// The backends in this file sit on the kernel's hottest paths (every
// L1 and L2 miss flows through them), so their request state lives in
// per-backend freelists of reusable nodes whose callbacks are bound
// once at node construction. Steady-state miss traffic allocates
// nothing: the (sink, lineAddr) pair a fill must come back to rides
// in the pooled node, and timed hops between pipeline stages go
// through the engine's pooled AtFunc events.

// l2Backend carries L1 misses across the L1/L2 bus into the unified
// L2. Both L1 caches share one instance's bus but use per-cache
// wrappers that know their own line size for the data return.
type l2Backend struct {
	eng *sim.Engine
	bus *bus.Bus
	l2  *cache.Cache
}

// l1DataBackend is the per-L1 view of the shared l2Backend.
type l1DataBackend struct {
	*l2Backend
	lineSize  uint64
	freeFetch *l1Fetch
}

// l1Fetch is one in-flight L1 miss: command beat, L2 lookup, data
// return. Its L2 completion callback is bound once, at construction.
type l1Fetch struct {
	b    *l1DataBackend
	sink cache.FillSink
	acc  cache.Access
	next *l1Fetch
}

func (b *l1DataBackend) getFetch() *l1Fetch {
	f := b.freeFetch
	if f == nil {
		//ml:waive hotalloc -- pool growth: allocates until the freelist high-water mark, then never again
		f = &l1Fetch{b: b}
		f.acc.Done = f
	} else {
		b.freeFetch = f.next
	}
	return f
}

func (b *l1DataBackend) putFetch(f *l1Fetch) {
	f.sink = nil
	f.next = b.freeFetch
	b.freeFetch = f
}

// Fetch implements cache.Backend for an L1 cache.
func (b *l1DataBackend) Fetch(lineAddr, pc uint64, prefetch bool, sink cache.FillSink) bool {
	now := b.eng.Now()
	if prefetch && b.bus.Busy(now) {
		return false // prefetches only use an idle bus
	}
	f := b.getFetch()
	f.sink = sink
	f.acc.Addr = lineAddr
	f.acc.PC = pc
	// Command transfer to L2 (one bus beat), then the L2 lookup, then
	// the line returns across the bus.
	cmdDone := b.bus.Reserve(now, 8)
	b.eng.AtFunc(cmdDone, l1FetchSubmit, f, nil, 0, 0)
	return true
}

// l1FetchSubmit retries per cycle rather than jumping to the
// refusal's RetryAt: the retry is a calendar event, and scheduling it
// straight at the acceptance cycle would change its FIFO position
// there relative to competing L2 clients — per-cycle polling keeps
// the event order (and therefore results) bit-identical.
func l1FetchSubmit(_ uint64, o1, _ any, _, _ uint64) {
	f := o1.(*l1Fetch)
	if !f.b.l2.Access(&f.acc).Accepted() {
		f.b.eng.AfterFunc(1, l1FetchSubmit, f, nil, 0, 0)
	}
}

// AccessDone implements cache.DoneSink (the node is its own pre-bound
// Access.Done): the L2 has the line; book the return beat on the
// L1/L2 bus and deliver.
func (f *l1Fetch) AccessDone(t uint64, hit bool) {
	dataDone := f.b.bus.Reserve(t, f.b.lineSize)
	f.b.eng.AtFunc(dataDone, l1FetchDeliver, f, nil, 0, 0)
}

func l1FetchDeliver(now uint64, o1, _ any, _, _ uint64) {
	f := o1.(*l1Fetch)
	sink, la := f.sink, f.acc.Addr
	f.b.putFetch(f)
	sink.FillLine(la, now)
}

// WriteBack implements cache.Backend: dirty L1 lines move across the
// bus and update (write-allocate) the L2.
func (b *l1DataBackend) WriteBack(lineAddr uint64) bool {
	dataDone := b.bus.Reserve(b.eng.Now(), b.lineSize)
	b.eng.AtFunc(dataDone, l1SubmitWB, b, nil, lineAddr, 0)
	return true
}

// l1SubmitWB polls per cycle for the same event-order reason as
// l1FetchSubmit.
func l1SubmitWB(_ uint64, o1, _ any, lineAddr, _ uint64) {
	b := o1.(*l1DataBackend)
	acc := cache.Access{Addr: lineAddr, Write: true}
	if !b.l2.Access(&acc).Accepted() {
		b.eng.AfterFunc(1, l1SubmitWB, b, nil, lineAddr, 0)
	}
}

// FreeAtHint implements cache.Backend.
func (b *l1DataBackend) FreeAtHint() uint64 { return b.bus.FreeAt() }

// memBackend carries L2 misses across the front-side bus into the
// SDRAM controller.
type memBackend struct {
	eng      *sim.Engine
	fsb      *bus.Bus
	m        mem.Model
	lineSize uint64

	freeFetch *memFetch
	freeWB    *memWB
}

// memFetch is one in-flight L2 miss inside the memory controller; the
// controller calls the pre-bound Done when the burst completes.
type memFetch struct {
	b    *memBackend
	sink cache.FillSink
	req  mem.Req
	next *memFetch
}

func (b *memBackend) getFetch() *memFetch {
	f := b.freeFetch
	if f == nil {
		//ml:waive hotalloc -- pool growth: allocates until the freelist high-water mark, then never again
		f = &memFetch{b: b}
		f.req.Done = f
	} else {
		b.freeFetch = f.next
	}
	return f
}

func (b *memBackend) putFetch(f *memFetch) {
	f.sink = nil
	f.next = b.freeFetch
	b.freeFetch = f
}

// ReqDone implements mem.DoneSink.
func (f *memFetch) ReqDone(now uint64) {
	sink, la := f.sink, f.req.Addr
	f.b.putFetch(f)
	sink.FillLine(la, now)
}

// ReqPtr implements mem.ReqHolder.
func (f *memFetch) ReqPtr() *mem.Req { return &f.req }

// memWB is one write-back in flight; its pre-bound Done returns the
// node to the pool once the controller retires the write.
type memWB struct {
	b    *memBackend
	req  mem.Req
	next *memWB
}

func (b *memBackend) getWB() *memWB {
	w := b.freeWB
	if w == nil {
		//ml:waive hotalloc -- pool growth: allocates until the freelist high-water mark, then never again
		w = &memWB{b: b}
		w.req.Done = w
		w.req.Write = true
	} else {
		b.freeWB = w.next
	}
	return w
}

// ReqDone implements mem.DoneSink.
func (w *memWB) ReqDone(now uint64) {
	w.next = w.b.freeWB
	w.b.freeWB = w
}

// ReqPtr implements mem.ReqHolder.
func (w *memWB) ReqPtr() *mem.Req { return &w.req }

// Fetch implements cache.Backend for the L2. The SDRAM burst already
// occupies the DRAM data bus (which is the front-side bus for a
// direct-attached controller), so the return path is not charged a
// second time; prefetch admission is controlled by the memory
// controller's queue policy.
func (b *memBackend) Fetch(lineAddr, pc uint64, prefetch bool, sink cache.FillSink) bool {
	f := b.getFetch()
	f.sink = sink
	f.req.Addr = lineAddr
	f.req.Size = uint32(b.lineSize)
	f.req.Prefetch = prefetch
	if !b.m.Enqueue(&f.req) {
		b.putFetch(f)
		return false
	}
	return true
}

// WriteBack implements cache.Backend: the dirty line crosses the FSB
// and is retired by the controller.
func (b *memBackend) WriteBack(lineAddr uint64) bool {
	dataDone := b.fsb.Reserve(b.eng.Now(), b.lineSize)
	w := b.getWB()
	w.req.Addr = lineAddr
	w.req.Size = uint32(b.lineSize)
	if !b.m.Enqueue(&w.req) {
		// Queue full: retry the controller entry once the bus beat
		// lands; the bus reservation already happened (data is in
		// flight) so this models controller-side buffering.
		b.eng.AtFunc(dataDone, memRetryWB, w, nil, 0, 0)
	}
	return true
}

func memRetryWB(_ uint64, o1, _ any, _, _ uint64) {
	w := o1.(*memWB)
	if !w.b.m.Enqueue(&w.req) {
		w.b.eng.AfterFunc(4, memRetryWB, w, nil, 0, 0)
	}
}

// FreeAtHint implements cache.Backend.
func (b *memBackend) FreeAtHint() uint64 {
	at := b.fsb.FreeAt()
	if n := b.eng.Now() + 4; n > at {
		return n
	}
	return at
}

// constBackend is the SimpleScalar-style memory path: no bus, no
// queue, a flat constant latency, unlimited concurrency.
type constBackend struct {
	eng       *sim.Engine
	m         mem.Model
	freeFetch *constFetch
	wbScratch mem.Req
}

// constFetch carries (sink, addr) through the constant-latency delay.
type constFetch struct {
	b    *constBackend
	sink cache.FillSink
	req  mem.Req
	next *constFetch
}

func (b *constBackend) getFetch() *constFetch {
	f := b.freeFetch
	if f == nil {
		//ml:waive hotalloc -- pool growth: allocates until the freelist high-water mark, then never again
		f = &constFetch{b: b}
		f.req.Done = f
		f.req.Size = 64
	} else {
		b.freeFetch = f.next
	}
	return f
}

// ReqDone implements mem.DoneSink.
func (f *constFetch) ReqDone(now uint64) {
	sink, la := f.sink, f.req.Addr
	f.sink = nil
	f.next = f.b.freeFetch
	f.b.freeFetch = f
	sink.FillLine(la, now)
}

// ReqPtr implements mem.ReqHolder.
func (f *constFetch) ReqPtr() *mem.Req { return &f.req }

// Fetch implements cache.Backend.
func (b *constBackend) Fetch(lineAddr, pc uint64, prefetch bool, sink cache.FillSink) bool {
	f := b.getFetch()
	f.sink = sink
	f.req.Addr = lineAddr
	f.req.Prefetch = prefetch
	if !b.m.Enqueue(&f.req) {
		f.sink = nil
		f.next = b.freeFetch
		b.freeFetch = f
		return false
	}
	return true
}

// WriteBack implements cache.Backend. The constant model neither
// refuses nor retains requests and nobody waits on the write, so one
// scratch request is reused for every write-back.
func (b *constBackend) WriteBack(lineAddr uint64) bool {
	b.wbScratch = mem.Req{Addr: lineAddr, Size: 64, Write: true}
	return b.m.Enqueue(&b.wbScratch)
}

// FreeAtHint implements cache.Backend.
func (b *constBackend) FreeAtHint() uint64 { return b.eng.Now() + 1 }

// Package hier assembles the Table 1 memory hierarchy: L1 data and
// instruction caches, a unified L2, the L1/L2 bus (32 bytes at
// 2 GHz), the front-side bus (64 bytes at 400 MHz) and a main memory
// model, all on one event engine.
package hier

import (
	"fmt"
	"strings"

	"microlib/internal/bus"
	"microlib/internal/cache"
	"microlib/internal/mem"
	"microlib/internal/sim"
)

// MemoryKind selects the main-memory model (the paper's Figure 8
// compares all three).
type MemoryKind int

const (
	// MemSDRAM is the detailed Table 1 SDRAM (~170-cycle average).
	MemSDRAM MemoryKind = iota
	// MemConst70 is the SimpleScalar-like constant 70-cycle memory.
	MemConst70
	// MemSDRAM70 is the SDRAM scaled to a ~70-cycle average.
	MemSDRAM70
)

// String names the memory kind for reports.
func (k MemoryKind) String() string {
	switch k {
	case MemSDRAM:
		return "sdram-170"
	case MemConst70:
		return "const-70"
	case MemSDRAM70:
		return "sdram-70"
	}
	return "unknown"
}

// Name returns the kind's selector name — the value of a campaign
// spec's "memories" axis, the microsim -memory flag and the
// "hier.mem.kind" config field (distinct from String, which renders
// the kind with its average latency for reports).
func (k MemoryKind) Name() string {
	switch k {
	case MemConst70:
		return "const70"
	case MemSDRAM70:
		return "sdram70"
	}
	return "sdram"
}

// MemoryKindNames returns the valid memory-model selector names,
// default first.
func MemoryKindNames() []string { return []string{"sdram", "const70", "sdram70"} }

// ParseMemoryKind resolves a memory-model selector name.
func ParseMemoryKind(name string) (MemoryKind, error) {
	switch name {
	case "sdram":
		return MemSDRAM, nil
	case "const70":
		return MemConst70, nil
	case "sdram70":
		return MemSDRAM70, nil
	}
	return 0, fmt.Errorf("hier: unknown memory model %q (have %s)", name, strings.Join(MemoryKindNames(), ", "))
}

// Config describes the full hierarchy.
type Config struct {
	L1D, L1I, L2 cache.Config
	Memory       MemoryKind
	ConstLatency uint64
	SDRAM        mem.SDRAMConfig
	// L1BusBytes/L1BusCPUCycles: L1/L2 bus geometry (32 B @ 2 GHz).
	L1BusBytes, L1BusCPUCycles uint64
	// FSBBytes/FSBCPUCycles: front-side bus geometry (64 B @ 400 MHz
	// under a 2 GHz core = 5 CPU cycles per bus cycle).
	FSBBytes, FSBCPUCycles uint64
}

// DefaultConfig returns the paper's Table 1 baseline.
func DefaultConfig() Config {
	return Config{
		L1D: cache.Config{
			Name: "L1D", Size: 32 << 10, LineSize: 32, Assoc: 1,
			HitLatency: 1, Ports: 4, MSHRs: 8, ReadsPerMSHR: 4,
			WriteBack: true, AllocOnWrite: true,
		},
		L1I: cache.Config{
			Name: "L1I", Size: 32 << 10, LineSize: 32, Assoc: 4,
			HitLatency: 1, Ports: 1, MSHRs: 4, ReadsPerMSHR: 4,
			WriteBack: false, AllocOnWrite: false,
		},
		L2: cache.Config{
			Name: "L2", Size: 1 << 20, LineSize: 64, Assoc: 4,
			HitLatency: 12, Ports: 1, MSHRs: 8, ReadsPerMSHR: 4,
			WriteBack: true, AllocOnWrite: true,
		},
		Memory:         MemSDRAM,
		ConstLatency:   70,
		SDRAM:          mem.DefaultSDRAMConfig(),
		L1BusBytes:     32,
		L1BusCPUCycles: 1,
		FSBBytes:       64,
		FSBCPUCycles:   5,
	}
}

// Check reports a structurally impossible hierarchy as an error:
// every cache level passes its own check, the buses have geometry,
// the memory kind is known and — when the detailed SDRAM is selected
// — its device parameters hold up. Plan-time validation uses it so a
// bad sweep value fails before hier.Build would panic in a worker.
func (c Config) Check() error {
	for _, cc := range []cache.Config{c.L1D, c.L1I, c.L2} {
		if err := cc.Check(); err != nil {
			return err
		}
	}
	if c.L1BusBytes == 0 || c.L1BusCPUCycles == 0 {
		return fmt.Errorf("hier: L1/L2 bus needs positive width and cycle time")
	}
	if c.FSBBytes == 0 || c.FSBCPUCycles == 0 {
		return fmt.Errorf("hier: front-side bus needs positive width and cycle time")
	}
	switch c.Memory {
	case MemSDRAM:
		// Only the detailed model reads Config.SDRAM (the scaled
		// sdram70 variant carries its own fixed device parameters).
		if err := c.SDRAM.Check(); err != nil {
			return err
		}
	case MemConst70:
		if c.ConstLatency == 0 {
			return fmt.Errorf("hier: constant-latency memory needs a positive latency")
		}
	case MemSDRAM70:
	default:
		return fmt.Errorf("hier: unknown memory kind %d", c.Memory)
	}
	return nil
}

// Named hierarchy variants: the cache-model accuracy points the
// paper's validation and methodology studies compare. They are the
// values of a campaign spec's "hiers" axis.
const (
	// VariantDefault is the detailed Table 1 hierarchy as built.
	VariantDefault = "default"
	// VariantInfiniteMSHR relaxes only the miss address files
	// (Figure 9's cache-accuracy study).
	VariantInfiniteMSHR = "infinite-mshr"
	// VariantSimpleScalar flips every cache to the SimpleScalar-like
	// behaviour (Figure 1's comparison point).
	VariantSimpleScalar = "simplescalar"
)

// VariantNames returns the named hierarchy variants, default first.
func VariantNames() []string {
	return []string{VariantDefault, VariantInfiniteMSHR, VariantSimpleScalar}
}

// WithVariant returns the config with a named variant applied. The
// variant only flips accuracy flags, so it composes with WithMemory
// in either order.
func (c Config) WithVariant(name string) (Config, error) {
	switch name {
	case VariantDefault:
		return c, nil
	case VariantInfiniteMSHR:
		return c.InfiniteMSHRMode(), nil
	case VariantSimpleScalar:
		return c.SimpleScalarCacheMode(), nil
	}
	return c, fmt.Errorf("hier: unknown variant %q (have %s)", name, strings.Join(VariantNames(), ", "))
}

// SimpleScalarCacheMode flips every cache to the less-detailed
// SimpleScalar behaviour (infinite MSHRs, free refill ports, no
// pipeline stalls) — the Figure 1 comparison point.
func (c Config) SimpleScalarCacheMode() Config {
	for _, cc := range []*cache.Config{&c.L1D, &c.L1I, &c.L2} {
		cc.InfiniteMSHR = true
		cc.FreeRefillPorts = true
		cc.NoPipelineStall = true
	}
	return c
}

// InfiniteMSHRMode relaxes only the miss address file (Figure 9).
func (c Config) InfiniteMSHRMode() Config {
	c.L1D.InfiniteMSHR = true
	c.L1I.InfiniteMSHR = true
	c.L2.InfiniteMSHR = true
	return c
}

// WithMemory returns the config with a different memory model.
func (c Config) WithMemory(k MemoryKind) Config {
	c.Memory = k
	return c
}

// Hierarchy is a built memory system.
type Hierarchy struct {
	Eng   *sim.Engine
	L1D   *cache.Cache
	L1I   *cache.Cache
	L2    *cache.Cache
	L1Bus *bus.Bus
	FSB   *bus.Bus
	Mem   mem.Model

	// Backend identities, retained for warm-state snapshotting (their
	// pooled request nodes surface as calendar-event operands).
	l1dBack, l1iBack *l1DataBackend
	memBack          *memBackend
	constBack        *constBackend
}

// Build wires the hierarchy on the engine.
func Build(eng *sim.Engine, cfg Config) *Hierarchy {
	h := &Hierarchy{Eng: eng}
	h.L1Bus = bus.New("l1l2", cfg.L1BusBytes, cfg.L1BusCPUCycles)
	h.FSB = bus.New("fsb", cfg.FSBBytes, cfg.FSBCPUCycles)

	switch cfg.Memory {
	case MemConst70:
		h.Mem = mem.NewConstLatency(eng, cfg.ConstLatency)
	case MemSDRAM70:
		s := mem.NewSDRAM(eng, mem.ScaledSDRAMConfig())
		s.SetName("sdram70")
		h.Mem = s
	default:
		h.Mem = mem.NewSDRAM(eng, cfg.SDRAM)
	}

	var l2Back cache.Backend
	if cfg.Memory == MemConst70 {
		h.constBack = &constBackend{eng: eng, m: h.Mem}
		l2Back = h.constBack
	} else {
		h.memBack = &memBackend{eng: eng, fsb: h.FSB, m: h.Mem, lineSize: uint64(cfg.L2.LineSize)}
		l2Back = h.memBack
	}
	h.L2 = cache.New(eng, cfg.L2, l2Back)

	l1Back := &l2Backend{eng: eng, bus: h.L1Bus, l2: h.L2}
	h.l1dBack = &l1DataBackend{l2Backend: l1Back, lineSize: uint64(cfg.L1D.LineSize)}
	h.l1iBack = &l1DataBackend{l2Backend: l1Back, lineSize: uint64(cfg.L1I.LineSize)}
	h.L1D = cache.New(eng, cfg.L1D, h.l1dBack)
	h.L1I = cache.New(eng, cfg.L1I, h.l1iBack)
	return h
}

package hier

import (
	"testing"

	"microlib/internal/cache"
	"microlib/internal/sim"
)

// TestDefaultConfigMatchesTable1 pins every Table 1 parameter.
func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := DefaultConfig()

	if c.L1D.Size != 32<<10 || c.L1D.Assoc != 1 || c.L1D.LineSize != 32 {
		t.Fatalf("L1D geometry: %+v", c.L1D)
	}
	if c.L1D.Ports != 4 || c.L1D.MSHRs != 8 || c.L1D.ReadsPerMSHR != 4 {
		t.Fatalf("L1D structural: %+v", c.L1D)
	}
	if !c.L1D.WriteBack || !c.L1D.AllocOnWrite || c.L1D.HitLatency != 1 {
		t.Fatalf("L1D policy: %+v", c.L1D)
	}
	if c.L1I.Size != 32<<10 || c.L1I.Assoc != 4 || c.L1I.HitLatency != 1 {
		t.Fatalf("L1I: %+v", c.L1I)
	}
	if c.L2.Size != 1<<20 || c.L2.Assoc != 4 || c.L2.LineSize != 64 ||
		c.L2.Ports != 1 || c.L2.MSHRs != 8 || c.L2.HitLatency != 12 {
		t.Fatalf("L2: %+v", c.L2)
	}
	if c.L1BusBytes != 32 || c.L1BusCPUCycles != 1 {
		t.Fatalf("L1/L2 bus: %+v", c)
	}
	if c.FSBBytes != 64 || c.FSBCPUCycles != 5 {
		t.Fatalf("FSB: %+v", c)
	}
	s := c.SDRAM
	if s.Rows != 8192 || s.Columns != 1024 || s.QueueSize != 32 {
		t.Fatalf("SDRAM geometry: %+v", s)
	}
	if s.RASToRAS != 20 || s.RASActive != 80 || s.RASToCAS != 30 ||
		s.CASLatency != 30 || s.RASPre != 30 || s.RASCycle != 110 {
		t.Fatalf("SDRAM timing: %+v", s)
	}
	if c.ConstLatency != 70 {
		t.Fatalf("const latency %d", c.ConstLatency)
	}
}

func TestModeTransforms(t *testing.T) {
	ss := DefaultConfig().SimpleScalarCacheMode()
	for _, cc := range []cache.Config{ss.L1D, ss.L1I, ss.L2} {
		if !cc.InfiniteMSHR || !cc.FreeRefillPorts || !cc.NoPipelineStall {
			t.Fatalf("SimpleScalar mode incomplete: %+v", cc)
		}
	}
	im := DefaultConfig().InfiniteMSHRMode()
	if !im.L1D.InfiniteMSHR || im.L1D.NoPipelineStall {
		t.Fatalf("InfiniteMSHR mode wrong: %+v", im.L1D)
	}
	if DefaultConfig().WithMemory(MemConst70).Memory != MemConst70 {
		t.Fatal("WithMemory")
	}
}

func TestMemoryKindString(t *testing.T) {
	for k, want := range map[MemoryKind]string{
		MemSDRAM: "sdram-170", MemConst70: "const-70", MemSDRAM70: "sdram-70",
	} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
}

// TestEndToEndMissPath drives one access through L1 -> bus -> L2 ->
// FSB -> SDRAM and back.
func TestEndToEndMissPath(t *testing.T) {
	for _, kind := range []MemoryKind{MemSDRAM, MemConst70, MemSDRAM70} {
		eng := sim.NewEngine()
		h := Build(eng, DefaultConfig().WithMemory(kind))
		var doneAt uint64
		ok := h.L1D.Access(&cache.Access{
			Addr: 0x1234_5678,
			PC:   0x400000,
			Done: cache.DoneFunc(func(now uint64, hit bool) { doneAt = now }),
		})
		if !ok.Accepted() {
			t.Fatalf("%v: access refused", kind)
		}
		eng.AdvanceTo(5000)
		if doneAt == 0 {
			t.Fatalf("%v: miss never completed", kind)
		}
		// A full miss must cost at least the L2 latency plus an
		// unloaded memory access (the scaled SDRAM's unloaded access
		// is ~25 cycles; its 70-cycle figure is a loaded average).
		if doneAt < 25 {
			t.Fatalf("%v: miss completed implausibly fast (%d cycles)", kind, doneAt)
		}
		if !h.L1D.Contains(0x1234_5678) || !h.L2.Contains(0x1234_5678) {
			t.Fatalf("%v: line not installed along the path", kind)
		}
		if h.Mem.Stats().Reads != 1 {
			t.Fatalf("%v: memory reads %d", kind, h.Mem.Stats().Reads)
		}
	}
}

// TestL2HitFasterThanMemory: a second L1 miss to a different L1 line
// of the same L2 line must be served by the L2.
func TestL2HitFasterThanMemory(t *testing.T) {
	eng := sim.NewEngine()
	h := Build(eng, DefaultConfig())
	var firstDone uint64
	h.L1D.Access(&cache.Access{Addr: 0x40000, Done: cache.DoneFunc(func(now uint64, hit bool) { firstDone = now })})
	eng.AdvanceTo(5000)
	start := eng.Now()
	var secondDone uint64
	// 0x40020 is a different 32B L1 line within the same 64B L2 line.
	h.L1D.Access(&cache.Access{Addr: 0x40020, Done: cache.DoneFunc(func(now uint64, hit bool) { secondDone = now })})
	eng.AdvanceTo(10000)
	if secondDone == 0 {
		t.Fatal("second access never completed")
	}
	if secondDone-start >= firstDone {
		t.Fatalf("L2 hit (%d cycles) not faster than full miss (%d)", secondDone-start, firstDone)
	}
	if h.Mem.Stats().Reads != 1 {
		t.Fatalf("second access went to memory (%d reads)", h.Mem.Stats().Reads)
	}
}

// TestWritebackReachesMemory: dirty L1 line evicted -> L2; dirty L2
// line evicted -> SDRAM write.
func TestWritebackReachesL2(t *testing.T) {
	eng := sim.NewEngine()
	h := Build(eng, DefaultConfig())
	// Dirty a line, then evict it with a conflicting fill (L1D is
	// direct-mapped: +32KB aliases).
	done := false
	h.L1D.Access(&cache.Access{Addr: 0x100000, Write: true, Done: cache.DoneFunc(func(uint64, bool) { done = true })})
	eng.AdvanceTo(5000)
	if !done {
		t.Fatal("store never completed")
	}
	h.L1D.Access(&cache.Access{Addr: 0x100000 + 32<<10})
	eng.AdvanceTo(10000)
	if h.L1D.Stats().WriteBack != 1 {
		t.Fatalf("L1 writebacks: %+v", h.L1D.Stats())
	}
	// The L2 received the writeback as a write access.
	if h.L2.Stats().Writes == 0 {
		t.Fatal("L2 never saw the writeback")
	}
}

package hier

import (
	"fmt"

	"microlib/internal/bus"
	"microlib/internal/cache"
	"microlib/internal/mem"
	"microlib/internal/sim"
)

// This file serializes the hierarchy's mutable state for warm-state
// checkpointing. Beyond the component states (caches, buses, memory),
// the hierarchy owns the pooled request nodes that ride the calendar
// as event operands and sit in MSHRs and the controller queue; the
// Snapshotter assigns each live node a table index lazily, the first
// time it surfaces from a component snapshot, and the Restorer
// materializes exactly those nodes from the pools on the way back.

// L1FetchState is the payload of one in-flight L1 miss node.
type L1FetchState struct {
	Which int // 0 = L1D backend, 1 = L1I backend
	Sink  sim.OpRef
	Addr  uint64
	PC    uint64
}

// MemFetchState is the payload of one in-flight L2 miss node.
type MemFetchState struct {
	Sink     sim.OpRef
	Addr     uint64
	Size     uint32
	Prefetch bool
}

// MemWBState is the payload of one in-flight write-back node.
type MemWBState struct {
	Addr uint64
	Size uint32
}

// ConstFetchState is the payload of one in-flight constant-latency
// fetch node.
type ConstFetchState struct {
	Sink     sim.OpRef
	Addr     uint64
	Prefetch bool
}

// State is the full mutable state of a Hierarchy. Exactly one of
// ConstMem and SDRAM is set, matching the configured memory kind. The
// node tables are indexed by the OpRef Idx values that the component
// states and the engine snapshot reference.
type State struct {
	L1D, L1I, L2 cache.State
	L1Bus, FSB   bus.State
	ConstMem     *mem.Stats
	SDRAM        *mem.SDRAMState
	L1Fetches    []L1FetchState
	MemFetches   []MemFetchState
	MemWBs       []MemWBState
	ConstFetches []ConstFetchState
}

// Snapshotter captures a hierarchy's state, acting as the operand-
// resolution domain for its own components and pooled nodes. Unknown
// operands (core-owned nodes, mechanisms) chain to next.
type Snapshotter struct {
	h    *Hierarchy
	st   *State
	refs map[any]sim.OpRef
	next func(any) (sim.OpRef, bool)
}

// NewSnapshotter returns a snapshotter filling st; next handles
// operands outside the hierarchy (may be nil).
func (h *Hierarchy) NewSnapshotter(st *State, next func(any) (sim.OpRef, bool)) *Snapshotter {
	return &Snapshotter{h: h, st: st, refs: map[any]sim.OpRef{}, next: next}
}

// Ref resolves an operand to its serializable reference.
func (s *Snapshotter) Ref(v any) (sim.OpRef, bool) {
	h := s.h
	switch {
	case v == any(h.L1D):
		return sim.OpRef{Kind: "hier.cache", Idx: 0}, true
	case v == any(h.L1I):
		return sim.OpRef{Kind: "hier.cache", Idx: 1}, true
	case v == any(h.L2):
		return sim.OpRef{Kind: "hier.cache", Idx: 2}, true
	case v == any(h.Mem):
		return sim.OpRef{Kind: "hier.mem"}, true
	case v == any(h.l1dBack):
		return sim.OpRef{Kind: "hier.l1be", Idx: 0}, true
	case v == any(h.l1iBack):
		return sim.OpRef{Kind: "hier.l1be", Idx: 1}, true
	}
	if r, ok := s.refs[v]; ok {
		return r, true
	}
	switch n := v.(type) {
	case *l1Fetch:
		which := 0
		if n.b == h.l1iBack {
			which = 1
		}
		sinkRef, ok := s.Ref(n.sink)
		if !ok {
			return sim.OpRef{}, false
		}
		r := sim.OpRef{Kind: "hier.l1f", Idx: uint64(len(s.st.L1Fetches))}
		s.st.L1Fetches = append(s.st.L1Fetches, L1FetchState{
			Which: which, Sink: sinkRef, Addr: n.acc.Addr, PC: n.acc.PC,
		})
		s.refs[v] = r
		return r, true
	case *memFetch:
		sinkRef, ok := s.Ref(n.sink)
		if !ok {
			return sim.OpRef{}, false
		}
		r := sim.OpRef{Kind: "hier.mf", Idx: uint64(len(s.st.MemFetches))}
		s.st.MemFetches = append(s.st.MemFetches, MemFetchState{
			Sink: sinkRef, Addr: n.req.Addr, Size: n.req.Size, Prefetch: n.req.Prefetch,
		})
		s.refs[v] = r
		return r, true
	case *memWB:
		r := sim.OpRef{Kind: "hier.mwb", Idx: uint64(len(s.st.MemWBs))}
		s.st.MemWBs = append(s.st.MemWBs, MemWBState{Addr: n.req.Addr, Size: n.req.Size})
		s.refs[v] = r
		return r, true
	case *constFetch:
		sinkRef, ok := s.Ref(n.sink)
		if !ok {
			return sim.OpRef{}, false
		}
		r := sim.OpRef{Kind: "hier.cf", Idx: uint64(len(s.st.ConstFetches))}
		s.st.ConstFetches = append(s.st.ConstFetches, ConstFetchState{
			Sink: sinkRef, Addr: n.req.Addr, Prefetch: n.req.Prefetch,
		})
		s.refs[v] = r
		return r, true
	}
	if s.next != nil {
		return s.next(v)
	}
	return sim.OpRef{}, false
}

// Capture fills the component states (caches, buses, memory),
// populating the node tables as their in-flight references surface.
func (s *Snapshotter) Capture() error {
	var err error
	if s.st.L1D, err = s.h.L1D.State(s.Ref); err != nil {
		return err
	}
	if s.st.L1I, err = s.h.L1I.State(s.Ref); err != nil {
		return err
	}
	if s.st.L2, err = s.h.L2.State(s.Ref); err != nil {
		return err
	}
	s.st.L1Bus = s.h.L1Bus.State()
	s.st.FSB = s.h.FSB.State()
	switch m := s.h.Mem.(type) {
	case *mem.ConstLatency:
		cs := m.State()
		s.st.ConstMem = &cs
	case *mem.SDRAM:
		ss, err := m.State(s.Ref)
		if err != nil {
			return err
		}
		s.st.SDRAM = &ss
	default:
		return fmt.Errorf("hier: memory model %T is not snapshottable", s.h.Mem)
	}
	return nil
}

// Restorer rebuilds a hierarchy's state from a snapshot, materializing
// pooled nodes on first reference. Unknown reference kinds chain to
// next.
type Restorer struct {
	h    *Hierarchy
	st   *State
	l1f  []*l1Fetch
	mf   []*memFetch
	mwb  []*memWB
	cf   []*constFetch
	next func(sim.OpRef) (any, bool)
}

// NewRestorer returns a restorer over st; next handles reference kinds
// outside the hierarchy (may be nil).
func (h *Hierarchy) NewRestorer(st *State, next func(sim.OpRef) (any, bool)) *Restorer {
	return &Restorer{
		h: h, st: st,
		l1f:  make([]*l1Fetch, len(st.L1Fetches)),
		mf:   make([]*memFetch, len(st.MemFetches)),
		mwb:  make([]*memWB, len(st.MemWBs)),
		cf:   make([]*constFetch, len(st.ConstFetches)),
		next: next,
	}
}

// Val resolves a serialized reference back to a live value.
func (r *Restorer) Val(ref sim.OpRef) (any, bool) {
	h := r.h
	switch ref.Kind {
	case "hier.cache":
		switch ref.Idx {
		case 0:
			return h.L1D, true
		case 1:
			return h.L1I, true
		case 2:
			return h.L2, true
		}
		return nil, false
	case "hier.mem":
		return h.Mem, true
	case "hier.l1be":
		if ref.Idx == 0 {
			return h.l1dBack, true
		}
		return h.l1iBack, true
	case "hier.l1f":
		if ref.Idx >= uint64(len(r.l1f)) {
			return nil, false
		}
		if n := r.l1f[ref.Idx]; n != nil {
			return n, true
		}
		p := r.st.L1Fetches[ref.Idx]
		b := h.l1dBack
		if p.Which == 1 {
			b = h.l1iBack
		}
		f := b.getFetch()
		sv, ok := r.Val(p.Sink)
		if !ok {
			return nil, false
		}
		sink, ok := sv.(cache.FillSink)
		if !ok {
			return nil, false
		}
		f.sink = sink
		f.acc.Addr, f.acc.PC = p.Addr, p.PC
		r.l1f[ref.Idx] = f
		return f, true
	case "hier.mf":
		if ref.Idx >= uint64(len(r.mf)) || h.memBack == nil {
			return nil, false
		}
		if n := r.mf[ref.Idx]; n != nil {
			return n, true
		}
		p := r.st.MemFetches[ref.Idx]
		f := h.memBack.getFetch()
		sv, ok := r.Val(p.Sink)
		if !ok {
			return nil, false
		}
		sink, ok := sv.(cache.FillSink)
		if !ok {
			return nil, false
		}
		f.sink = sink
		f.req.Addr, f.req.Size, f.req.Prefetch = p.Addr, p.Size, p.Prefetch
		r.mf[ref.Idx] = f
		return f, true
	case "hier.mwb":
		if ref.Idx >= uint64(len(r.mwb)) || h.memBack == nil {
			return nil, false
		}
		if n := r.mwb[ref.Idx]; n != nil {
			return n, true
		}
		p := r.st.MemWBs[ref.Idx]
		w := h.memBack.getWB()
		w.req.Addr, w.req.Size = p.Addr, p.Size
		r.mwb[ref.Idx] = w
		return w, true
	case "hier.cf":
		if ref.Idx >= uint64(len(r.cf)) || h.constBack == nil {
			return nil, false
		}
		if n := r.cf[ref.Idx]; n != nil {
			return n, true
		}
		p := r.st.ConstFetches[ref.Idx]
		f := h.constBack.getFetch()
		sv, ok := r.Val(p.Sink)
		if !ok {
			return nil, false
		}
		sink, ok := sv.(cache.FillSink)
		if !ok {
			return nil, false
		}
		f.sink = sink
		f.req.Addr, f.req.Prefetch = p.Addr, p.Prefetch
		r.cf[ref.Idx] = f
		return f, true
	}
	if r.next != nil {
		return r.next(ref)
	}
	return nil, false
}

// Apply overwrites the hierarchy's component states from the snapshot.
func (r *Restorer) Apply() error {
	h, st := r.h, r.st
	h.L1Bus.SetState(st.L1Bus)
	h.FSB.SetState(st.FSB)
	if err := h.L1D.SetState(st.L1D, r.Val); err != nil {
		return err
	}
	if err := h.L1I.SetState(st.L1I, r.Val); err != nil {
		return err
	}
	if err := h.L2.SetState(st.L2, r.Val); err != nil {
		return err
	}
	switch m := h.Mem.(type) {
	case *mem.ConstLatency:
		if st.ConstMem == nil {
			return fmt.Errorf("hier: snapshot has no constant-memory state")
		}
		m.SetState(*st.ConstMem)
	case *mem.SDRAM:
		if st.SDRAM == nil {
			return fmt.Errorf("hier: snapshot has no SDRAM state")
		}
		if err := m.SetState(*st.SDRAM, r.Val); err != nil {
			return err
		}
	default:
		return fmt.Errorf("hier: memory model %T is not restorable", h.Mem)
	}
	return nil
}

func init() {
	sim.RegisterFunc("hier.l1FetchSubmit", l1FetchSubmit)
	sim.RegisterFunc("hier.l1FetchDeliver", l1FetchDeliver)
	sim.RegisterFunc("hier.l1SubmitWB", l1SubmitWB)
	sim.RegisterFunc("hier.memRetryWB", memRetryWB)
}

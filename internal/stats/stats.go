// Package stats implements the quantitative-comparison layer of
// MicroLib: speedup grids over (benchmark × mechanism), rankings,
// the benchmark-subset winner analysis of Table 6, the sensitivity
// metrics of Figures 6/7, and small formatting helpers for the
// report tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Grid holds one metric (IPC by convention) for every benchmark ×
// mechanism cell of an experiment.
type Grid struct {
	Benchmarks []string
	Mechs      []string // Mechs[0] is the baseline by convention
	// Values[b][m] with b, m indexing the two slices above.
	Values [][]float64
}

// NewGrid allocates a zeroed grid.
func NewGrid(benchmarks, mechs []string) *Grid {
	v := make([][]float64, len(benchmarks))
	for i := range v {
		v[i] = make([]float64, len(mechs))
	}
	return &Grid{Benchmarks: benchmarks, Mechs: mechs, Values: v}
}

// BenchIndex returns the row of a benchmark, or -1.
func (g *Grid) BenchIndex(name string) int {
	for i, b := range g.Benchmarks {
		if b == name {
			return i
		}
	}
	return -1
}

// MechIndex returns the column of a mechanism, or -1.
func (g *Grid) MechIndex(name string) int {
	for i, m := range g.Mechs {
		if m == name {
			return i
		}
	}
	return -1
}

// Set stores a cell.
func (g *Grid) Set(bench, mech string, v float64) {
	b, m := g.BenchIndex(bench), g.MechIndex(mech)
	if b < 0 || m < 0 {
		panic(fmt.Sprintf("stats: unknown cell %s/%s", bench, mech))
	}
	g.Values[b][m] = v
}

// Speedups returns a grid of Values normalized to the named baseline
// column (speedup = value / baseline), baseline column included
// (all 1.0).
func (g *Grid) Speedups(baseline string) *Grid {
	bi := g.MechIndex(baseline)
	if bi < 0 {
		panic("stats: unknown baseline " + baseline)
	}
	out := NewGrid(g.Benchmarks, g.Mechs)
	for b := range g.Values {
		base := g.Values[b][bi]
		for m := range g.Values[b] {
			if base > 0 {
				out.Values[b][m] = g.Values[b][m] / base
			}
		}
	}
	return out
}

// Subset restricts a grid to the named benchmarks (order preserved
// from the argument).
func (g *Grid) Subset(benchmarks []string) *Grid {
	out := NewGrid(benchmarks, g.Mechs)
	for i, b := range benchmarks {
		bi := g.BenchIndex(b)
		if bi < 0 {
			panic("stats: unknown benchmark " + b)
		}
		copy(out.Values[i], g.Values[bi])
	}
	return out
}

// MeanPerMech averages each mechanism column (arithmetic mean, as
// the paper does for its average-speedup bars).
func (g *Grid) MeanPerMech() []float64 {
	out := make([]float64, len(g.Mechs))
	if len(g.Benchmarks) == 0 {
		return out
	}
	for m := range g.Mechs {
		sum := 0.0
		for b := range g.Benchmarks {
			sum += g.Values[b][m]
		}
		out[m] = sum / float64(len(g.Benchmarks))
	}
	return out
}

// Rank returns, per mechanism, its 1-based rank under the mean of
// the grid (1 = highest mean). Ties break by column order.
func (g *Grid) Rank() []int {
	means := g.MeanPerMech()
	idx := make([]int, len(means))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return means[idx[a]] > means[idx[b]] })
	ranks := make([]int, len(means))
	for pos, m := range idx {
		ranks[m] = pos + 1
	}
	return ranks
}

// Winner returns the mechanism with the best mean.
func (g *Grid) Winner() string {
	means := g.MeanPerMech()
	best := 0
	for i, v := range means {
		if v > means[best] {
			best = i
		}
	}
	return g.Mechs[best]
}

// Sensitivity returns, per benchmark, the spread max-min of the row
// — the paper's Figure 6 measure of how strongly a benchmark reacts
// to data-cache mechanisms.
func (g *Grid) Sensitivity() []float64 {
	out := make([]float64, len(g.Benchmarks))
	for b, row := range g.Values {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range row {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		out[b] = hi - lo
	}
	return out
}

// SortBySensitivity returns benchmark names ordered from most to
// least sensitive.
func (g *Grid) SortBySensitivity() []string {
	s := g.Sensitivity()
	idx := make([]int, len(s))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return s[idx[a]] > s[idx[b]] })
	out := make([]string, len(idx))
	for i, b := range idx {
		out[i] = g.Benchmarks[b]
	}
	return out
}

// FormatTable renders the grid as a fixed-width ASCII table.
func (g *Grid) FormatTable(prec int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s", "bench")
	for _, m := range g.Mechs {
		fmt.Fprintf(&sb, " %8s", m)
	}
	sb.WriteByte('\n')
	for b, row := range g.Values {
		fmt.Fprintf(&sb, "%-10s", g.Benchmarks[b])
		for _, v := range row {
			fmt.Fprintf(&sb, " %8.*f", prec, v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatMeans renders per-mechanism means sorted descending.
func (g *Grid) FormatMeans() string {
	means := g.MeanPerMech()
	idx := make([]int, len(means))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return means[idx[a]] > means[idx[b]] })
	var sb strings.Builder
	for pos, m := range idx {
		fmt.Fprintf(&sb, "%2d. %-8s %.4f\n", pos+1, g.Mechs[m], means[m])
	}
	return sb.String()
}

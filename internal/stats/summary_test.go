package stats

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.CI95 != 0 {
		t.Errorf("empty: got %+v", s)
	}
	s := Summarize([]float64{1.5})
	if s.N != 1 || s.Mean != 1.5 || s.StdDev != 0 || s.CI95 != 0 {
		t.Errorf("single: got %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	// mean 2, sample stddev 1, n=4, df=3 => CI95 = 3.182 * 1/2.
	s := Summarize([]float64{1, 1, 3, 3})
	if s.N != 4 || !approx(s.Mean, 2, 1e-12) {
		t.Fatalf("got %+v", s)
	}
	if !approx(s.StdDev, math.Sqrt(4.0/3.0), 1e-12) {
		t.Errorf("stddev: got %v", s.StdDev)
	}
	want := 3.182 * s.StdDev / 2
	if !approx(s.CI95, want, 1e-9) {
		t.Errorf("CI95: got %v, want %v", s.CI95, want)
	}
}

func TestSummarizeConstantSeries(t *testing.T) {
	s := Summarize([]float64{0.75, 0.75, 0.75})
	if s.StdDev != 0 || s.CI95 != 0 || s.Mean != 0.75 {
		t.Errorf("constant series must have zero spread: %+v", s)
	}
}

func TestSummarizeLargeNFallsBackToNormal(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2) // mean 0.5
	}
	s := Summarize(xs)
	want := 1.96 * s.StdDev / 10
	if !approx(s.CI95, want, 1e-9) {
		t.Errorf("CI95: got %v, want %v", s.CI95, want)
	}
}

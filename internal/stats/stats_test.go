package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func demoGrid() *Grid {
	g := NewGrid([]string{"a", "b", "c"}, []string{"Base", "M1", "M2"})
	// IPCs: M1 best on a+b, M2 wins c big.
	g.Set("a", "Base", 1.0)
	g.Set("a", "M1", 1.2)
	g.Set("a", "M2", 0.9)
	g.Set("b", "Base", 2.0)
	g.Set("b", "M1", 2.4)
	g.Set("b", "M2", 2.0)
	g.Set("c", "Base", 0.5)
	g.Set("c", "M1", 0.5)
	g.Set("c", "M2", 1.0)
	return g
}

func TestSpeedups(t *testing.T) {
	sp := demoGrid().Speedups("Base")
	if sp.Values[0][1] != 1.2 || sp.Values[2][2] != 2.0 {
		t.Fatalf("speedups wrong: %v", sp.Values)
	}
	for b := range sp.Benchmarks {
		if sp.Values[b][0] != 1.0 {
			t.Fatal("baseline column not 1.0")
		}
	}
}

func TestMeanAndRank(t *testing.T) {
	sp := demoGrid().Speedups("Base")
	means := sp.MeanPerMech()
	// M1: (1.2+1.2+1.0)/3 = 1.1333; M2: (0.9+1.0+2.0)/3 = 1.3
	if means[2] <= means[1] {
		t.Fatalf("means: %v", means)
	}
	ranks := sp.Rank()
	if ranks[2] != 1 || ranks[1] != 2 || ranks[0] != 3 {
		t.Fatalf("ranks: %v", ranks)
	}
	if sp.Winner() != "M2" {
		t.Fatalf("winner %s", sp.Winner())
	}
}

func TestSubset(t *testing.T) {
	sp := demoGrid().Speedups("Base")
	sub := sp.Subset([]string{"a", "b"})
	if sub.Winner() != "M1" {
		t.Fatalf("subset winner %s", sub.Winner())
	}
}

func TestSensitivity(t *testing.T) {
	sp := demoGrid().Speedups("Base")
	s := sp.Sensitivity()
	// c has spread 2.0-1.0 = 1.0, the largest.
	order := sp.SortBySensitivity()
	if order[0] != "c" {
		t.Fatalf("sensitivity order %v (%v)", order, s)
	}
}

func TestCanWin(t *testing.T) {
	sp := demoGrid().Speedups("Base")
	// M2 wins with {c} alone.
	ok, witness := sp.CanWin("M2", 1)
	if !ok || witness[0] != "c" {
		t.Fatalf("M2 single-benchmark win: %v %v", ok, witness)
	}
	// M1 wins with {a} or {b}.
	if ok, _ := sp.CanWin("M1", 1); !ok {
		t.Fatal("M1 cannot win any single benchmark")
	}
	// Base can never strictly win (M1 >= Base everywhere, > somewhere).
	if ok, w := sp.CanWin("Base", 1); ok {
		t.Fatalf("Base cannot win, got witness %v", w)
	}
	// M2 with all three: mean 1.3 vs M1 1.1333: wins.
	if ok, _ := sp.CanWin("M2", 3); !ok {
		t.Fatal("M2 should win the full set")
	}
	if ok, _ := sp.CanWin("M1", 3); ok {
		t.Fatal("M1 cannot win the full set")
	}
}

func TestWinnerSubsetsShape(t *testing.T) {
	sp := demoGrid().Speedups("Base")
	table := sp.WinnerSubsets()
	if len(table) != 3 || len(table[0]) != 3 {
		t.Fatalf("table shape %dx%d", len(table), len(table[0]))
	}
	if n := sp.MultipleWinnersUpTo(); n < 1 {
		t.Fatalf("multiple winners up to %d", n)
	}
}

// TestPropertyCanWinConsistent: any witness returned by CanWin must
// actually make the mechanism the strict winner.
func TestPropertyCanWinConsistent(t *testing.T) {
	err := quick.Check(func(vals [9]float64) bool {
		g := NewGrid([]string{"a", "b", "c"}, []string{"Base", "M1", "M2"})
		idx := 0
		for _, b := range g.Benchmarks {
			for _, m := range g.Mechs {
				v := math.Abs(vals[idx])
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 1
				}
				g.Set(b, m, 0.1+math.Mod(v, 8))
				idx++
			}
		}
		for _, mech := range g.Mechs {
			for n := 1; n <= 3; n++ {
				ok, witness := g.CanWin(mech, n)
				if !ok {
					continue
				}
				sub := g.Subset(witness)
				if sub.Winner() != mech {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFormatting(t *testing.T) {
	sp := demoGrid().Speedups("Base")
	tbl := sp.FormatTable(3)
	if !strings.Contains(tbl, "M1") || !strings.Contains(tbl, "1.200") {
		t.Fatalf("table:\n%s", tbl)
	}
	means := sp.FormatMeans()
	if !strings.HasPrefix(means, " 1. M2") {
		t.Fatalf("means:\n%s", means)
	}
}

func TestSetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown cell accepted")
		}
	}()
	demoGrid().Set("zzz", "M1", 1)
}

package stats

// This file implements the paper's Table 6 analysis: for every
// mechanism M and every benchmark-count N, is there a selection of N
// benchmarks under which M has the best average speedup? The paper
// enumerates selections; with 26 benchmarks exhaustive enumeration is
// infeasible in general, so WinnerSubsets uses an exact greedy
// certificate plus local-search improvement:
//
//   - M beats competitor C on subset S iff sum over S of
//     (speedup_M(b) - speedup_C(b)) > 0;
//   - the certificate keeps, for candidate subsets, the minimum such
//     margin over all competitors (a max-min objective), growing the
//     subset greedily and then swapping members while the margin can
//     improve.
//
// The result is a lower bound on winnability: a check mark is
// certain, a blank may rarely be a missed solution. The direction of
// the paper's conclusion (cherry-picking can make almost anyone win)
// is preserved.

// CanWin reports whether mechanism mech can have the strictly best
// mean over some subset of exactly n benchmarks of the speedup grid
// g, and returns one witness subset when found.
func (g *Grid) CanWin(mech string, n int) (bool, []string) {
	mi := g.MechIndex(mech)
	if mi < 0 || n <= 0 || n > len(g.Benchmarks) {
		return false, nil
	}
	nb := len(g.Benchmarks)
	nm := len(g.Mechs)

	// adv[b][c] = speedup advantage of mech over competitor c on
	// benchmark b.
	adv := make([][]float64, nb)
	for b := 0; b < nb; b++ {
		adv[b] = make([]float64, nm)
		for c := 0; c < nm; c++ {
			adv[b][c] = g.Values[b][mi] - g.Values[b][c]
		}
	}

	// minMargin of a subset: the tightest total advantage over any
	// competitor.
	margins := make([]float64, nm)
	minMargin := func(sel []int) float64 {
		for c := range margins {
			margins[c] = 0
		}
		for _, b := range sel {
			for c := 0; c < nm; c++ {
				margins[c] += adv[b][c]
			}
		}
		best := 0.0
		first := true
		for c := 0; c < nm; c++ {
			if c == mi {
				continue
			}
			if first || margins[c] < best {
				best = margins[c]
				first = false
			}
		}
		return best
	}

	// Greedy: grow the subset one benchmark at a time, always adding
	// the candidate that maximizes the resulting min margin.
	sel := make([]int, 0, n)
	used := make([]bool, nb)
	for len(sel) < n {
		bestB, bestV := -1, 0.0
		for b := 0; b < nb; b++ {
			if used[b] {
				continue
			}
			v := minMargin(append(sel, b))
			if bestB < 0 || v > bestV {
				bestB, bestV = b, v
			}
		}
		sel = append(sel, bestB)
		used[bestB] = true
	}

	// Local search: swap members with outsiders while it helps.
	cur := minMargin(sel)
	improved := true
	for improved && cur <= 0 {
		improved = false
		for i := 0; i < len(sel) && !improved; i++ {
			old := sel[i]
			for b := 0; b < nb; b++ {
				if used[b] {
					continue
				}
				sel[i] = b
				if v := minMargin(sel); v > cur {
					used[old] = false
					used[b] = true
					cur = v
					improved = true
					break
				}
				sel[i] = old
			}
		}
	}
	if cur <= 0 {
		return false, nil
	}
	names := make([]string, len(sel))
	for i, b := range sel {
		names[i] = g.Benchmarks[b]
	}
	return true, names
}

// WinnerSubsets computes the Table 6 matrix: result[n-1][m] is true
// when mechanism m can win with some n-benchmark selection.
func (g *Grid) WinnerSubsets() [][]bool {
	nb := len(g.Benchmarks)
	out := make([][]bool, nb)
	for n := 1; n <= nb; n++ {
		row := make([]bool, len(g.Mechs))
		for m, name := range g.Mechs {
			ok, _ := g.CanWin(name, n)
			row[m] = ok
		}
		out[n-1] = row
	}
	return out
}

// MultipleWinnersUpTo returns the largest N such that at least two
// different mechanisms can win some N-benchmark selection (the paper
// reports 23 for its data).
func (g *Grid) MultipleWinnersUpTo() int {
	table := g.WinnerSubsets()
	last := 0
	for n := 1; n <= len(table); n++ {
		winners := 0
		for _, ok := range table[n-1] {
			if ok {
				winners++
			}
		}
		if winners > 1 {
			last = n
		}
	}
	return last
}

package stats

import "math"

// Sample summarizes replicated measurements of one quantity (for
// MicroLib: the IPC of one benchmark × mechanism cell across
// workload-generator seeds).
type Sample struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	// CI95 is the half-width of the 95% confidence interval of the
	// mean under the t-distribution; 0 for fewer than two samples.
	CI95 float64
}

// tCrit95 holds two-sided 95% t critical values for 1..30 degrees of
// freedom; larger dfs fall back to the normal 1.96.
var tCrit95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// Summarize computes mean, sample standard deviation and the 95%
// confidence half-width of xs.
func Summarize(xs []float64) Sample {
	s := Sample{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(s.N-1))
	df := s.N - 1
	t := 1.96
	if df <= len(tCrit95) {
		t = tCrit95[df-1]
	}
	s.CI95 = t * s.StdDev / math.Sqrt(float64(s.N))
	return s
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Metrics is an expvar-style registry of named live gauges. Each
// variable is a pull callback evaluated at scrape time, so the
// instrumented code pays nothing between scrapes — the same
// philosophy as the interval sampler. Unlike the stdlib expvar
// package the registry is an instance, not process-global state, so
// tests (and a future multi-campaign service) can run several
// side by side.
type Metrics struct {
	mu   sync.Mutex
	vars map[string]func() any
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{vars: map[string]func() any{}} }

// Register publishes a named variable. fn is called on every scrape
// and must be safe for concurrent use; its result must be JSON
// encodable. Re-registering a name replaces the previous variable.
func (m *Metrics) Register(name string, fn func() any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.vars[name] = fn
}

// Snapshot evaluates every variable.
func (m *Metrics) Snapshot() map[string]any {
	m.mu.Lock()
	fns := make(map[string]func() any, len(m.vars))
	for k, fn := range m.vars {
		fns[k] = fn
	}
	m.mu.Unlock()
	// Evaluate outside the lock: a gauge callback may itself take
	// locks (scheduler counters), and scrapes must never stall the
	// workers.
	out := make(map[string]any, len(fns))
	for k, fn := range fns {
		out[k] = fn()
	}
	return out
}

// ServeHTTP renders the registry as one JSON object with sorted keys
// (expvar's /debug/vars shape).
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	snap := m.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintln(w, "{")
	for i, k := range keys {
		data, err := json.Marshal(snap[k])
		if err != nil {
			data, _ = json.Marshal(fmt.Sprintf("unencodable: %v", err))
		}
		comma := ","
		if i == len(keys)-1 {
			comma = ""
		}
		fmt.Fprintf(w, "  %q: %s%s\n", k, data, comma)
	}
	fmt.Fprintln(w, "}")
}

// Handler builds the live-endpoint mux: the metrics registry at
// /metrics (with /debug/vars as the expvar-compatible alias) and the
// standard pprof handlers under /debug/pprof/, so a grinding sweep
// can be profiled without restarting it.
func Handler(m *Metrics) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", m)
	mux.Handle("/debug/vars", m)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "microlib telemetry: /metrics, /debug/vars, /debug/pprof/")
	})
	return mux
}

// Server is a running live endpoint.
type Server struct {
	srv  *http.Server
	addr string
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.addr }

// Close shuts the endpoint down immediately.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds addr and serves the live endpoint in a background
// goroutine. It returns once the listener is bound, so a caller that
// logs Addr() is guaranteed the endpoint is already reachable.
func Serve(addr string, m *Metrics) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: live endpoint: %w", err)
	}
	srv := &http.Server{Handler: Handler(m), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// ErrServerClosed is the normal shutdown path; any other serve
		// error only matters while the campaign still runs, and the
		// scrape failures make it visible there.
		_ = srv.Serve(l)
	}()
	return &Server{srv: srv, addr: l.Addr().String()}, nil
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// FormatNames lists the interval series output formats.
func FormatNames() []string { return []string{"text", "csv", "json"} }

// WriteIntervals renders an interval series in the named format:
// "text" (a human-readable rate table), "csv" (full flattened
// counters) or "json" (an array of Interval objects).
func WriteIntervals(w io.Writer, format string, ivs []Interval) error {
	switch format {
	case "text":
		return WriteIntervalsText(w, ivs)
	case "csv":
		return WriteIntervalsCSV(w, ivs)
	case "json":
		return WriteIntervalsJSON(w, ivs)
	}
	return fmt.Errorf("telemetry: unknown interval format %q (want %s)",
		format, strings.Join(FormatNames(), ", "))
}

// WriteIntervalsText prints the derived per-interval rates the paper
// plots discuss: IPC, miss ratios, bus occupancies, memory traffic.
func WriteIntervalsText(w io.Writer, ivs []Interval) error {
	if _, err := fmt.Fprintf(w, "%-4s %-2s %12s %12s %8s %7s %7s %7s %7s %7s %7s %8s %9s %8s %8s\n",
		"idx", "ph", "start", "end", "insts", "ipc",
		"l1d.mr", "l1i.mr", "l2.mr", "l1bus", "fsb", "memrd", "rdlat",
		"l1d.rej", "l2.rej"); err != nil {
		return err
	}
	for _, iv := range ivs {
		phase := "m"
		if iv.Warmup {
			phase = "w"
		}
		if _, err := fmt.Fprintf(w, "%-4d %-2s %12d %12d %8d %7.4f %7.4f %7.4f %7.4f %7.4f %7.4f %8d %9.1f %8d %8d\n",
			iv.Index, phase, iv.StartCycle, iv.EndCycle, iv.Insts, iv.IPC(),
			iv.L1D.MissRatio(), iv.L1I.MissRatio(), iv.L2.MissRatio(),
			iv.BusOccupancy(iv.L1Bus), iv.BusOccupancy(iv.FSB),
			iv.Mem.Reads, iv.Mem.AvgReadLatency(),
			iv.L1D.RejectPort+iv.L1D.RejectStall+iv.L1D.RejectMSHR,
			iv.L2.RejectPort+iv.L2.RejectStall+iv.L2.RejectMSHR); err != nil {
			return err
		}
	}
	return nil
}

// WriteIntervalsCSV emits one row per interval with every raw counter
// delta, plus the derived IPC and occupancy columns, machine-ready
// for plotting.
func WriteIntervalsCSV(w io.Writer, ivs []Interval) error {
	cols := []string{
		"index", "warmup", "start_cycle", "end_cycle", "cycles", "insts", "ipc",
		"l1d_accesses", "l1d_hits", "l1d_misses", "l1d_miss_ratio",
		"l1i_accesses", "l1i_misses",
		"l2_accesses", "l2_hits", "l2_misses", "l2_miss_ratio",
		"prefetch_issued", "prefetch_useful",
		"l1bus_transfers", "l1bus_occupancy", "fsb_transfers", "fsb_occupancy",
		"mem_reads", "mem_writes", "mem_avg_read_latency", "mem_row_hits", "mem_row_conflicts",
		"l1d_rej_port", "l1d_rej_stall", "l1d_rej_mshr",
		"l2_rej_port", "l2_rej_stall", "l2_rej_mshr",
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, iv := range ivs {
		warm := 0
		if iv.Warmup {
			warm = 1
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%.6f,%d,%d,%d,%.6f,%d,%d,%d,%d,%d,%.6f,%d,%d,%d,%.6f,%d,%.6f,%d,%d,%.2f,%d,%d,%d,%d,%d,%d,%d,%d\n",
			iv.Index, warm, iv.StartCycle, iv.EndCycle, iv.Cycles(), iv.Insts, iv.IPC(),
			iv.L1D.Accesses, iv.L1D.Hits, iv.L1D.Misses, iv.L1D.MissRatio(),
			iv.L1I.Accesses, iv.L1I.Misses,
			iv.L2.Accesses, iv.L2.Hits, iv.L2.Misses, iv.L2.MissRatio(),
			iv.L1D.PrefetchIssued+iv.L2.PrefetchIssued, iv.L1D.PrefetchUseful+iv.L2.PrefetchUseful,
			iv.L1Bus.Transfers, iv.BusOccupancy(iv.L1Bus), iv.FSB.Transfers, iv.BusOccupancy(iv.FSB),
			iv.Mem.Reads, iv.Mem.Writes, iv.Mem.AvgReadLatency(), iv.Mem.RowHits, iv.Mem.RowConflicts,
			iv.L1D.RejectPort, iv.L1D.RejectStall, iv.L1D.RejectMSHR,
			iv.L2.RejectPort, iv.L2.RejectStall, iv.L2.RejectMSHR); err != nil {
			return err
		}
	}
	return nil
}

// WriteIntervalsJSON emits the series as an indented JSON array of
// full Interval objects (the same shape the campaign per-cell
// time-series artifact embeds).
func WriteIntervalsJSON(w io.Writer, ivs []Interval) error {
	if ivs == nil {
		ivs = []Interval{}
	}
	data, err := json.MarshalIndent(ivs, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"microlib/internal/cache"
	"microlib/internal/mem"
	"microlib/internal/sim"
)

// fakeCounters drives a sampler from a synthetic monotonic counter
// source: per simulated cycle, one instruction, two L1D accesses and
// one memory read accumulate.
type fakeCounters struct{ eng *sim.Engine }

func (f *fakeCounters) read(c *Counters) {
	now := f.eng.Now()
	c.Cycle = now
	c.Insts = now
	c.L1D = cache.Stats{Accesses: 2 * now, Hits: now, Misses: now}
	c.Mem = mem.Stats{Reads: now, TotalReadLatency: 70 * now}
	c.L1Bus = BusCounters{Transfers: now, BusyCycles: now / 2}
}

func TestSamplerCutsOnGridAndSumsExactly(t *testing.T) {
	eng := sim.NewEngine()
	src := &fakeCounters{eng: eng}
	var ivs []Interval
	s := NewSampler(eng, 100, true, src.read, func(iv Interval) { ivs = append(ivs, iv) })

	eng.AdvanceTo(250) // grid cuts at 100 and 200
	s.EndWarmup(250)   // forced cut at 250
	eng.AdvanceTo(437)
	s.Finish(437) // final partial cut at 437

	if len(ivs) != 6 {
		t.Fatalf("got %d intervals, want 6: %+v", len(ivs), ivs)
	}
	wantBounds := [][2]uint64{{0, 100}, {100, 200}, {200, 250}, {250, 300}, {300, 400}, {400, 437}}
	for i, iv := range ivs {
		if iv.Index != i {
			t.Errorf("interval %d: index %d", i, iv.Index)
		}
		if [2]uint64{iv.StartCycle, iv.EndCycle} != wantBounds[i] {
			t.Errorf("interval %d: bounds [%d,%d], want %v", i, iv.StartCycle, iv.EndCycle, wantBounds[i])
		}
		wantWarm := iv.EndCycle <= 250
		if iv.Warmup != wantWarm {
			t.Errorf("interval %d: warmup=%t, want %t", i, iv.Warmup, wantWarm)
		}
		if iv.Insts != iv.Cycles() {
			t.Errorf("interval %d: insts %d, cycles %d", i, iv.Insts, iv.Cycles())
		}
		if iv.IPC() != 1 {
			t.Errorf("interval %d: IPC %f, want 1", i, iv.IPC())
		}
	}

	total := Sum(ivs)
	var want Counters
	src.read(&want)
	if total.Insts != want.Insts || total.L1D != want.L1D || total.Mem != want.Mem || total.L1Bus != want.L1Bus {
		t.Errorf("summed intervals diverge from cumulative totals:\n got %+v\nwant %+v", total, want)
	}
	if total.StartCycle != 0 || total.EndCycle != 437 {
		t.Errorf("summed span [%d,%d], want [0,437]", total.StartCycle, total.EndCycle)
	}
	if total.Warmup {
		t.Error("a span containing measured intervals must not be marked warm-up")
	}

	meas := Sum(ivs[3:])
	if meas.Insts != 437-250 {
		t.Errorf("measured insts %d, want %d", meas.Insts, 437-250)
	}
}

func TestSamplerEmitsIdleIntervalsOnceEach(t *testing.T) {
	eng := sim.NewEngine()
	var reads int
	// Counters that never move: a fully idle machine. Dead time is
	// still real time — the grid keeps emitting zero-activity rows —
	// but a boundary that advances nothing (Finish exactly at the
	// last grid cut) adds no duplicate row.
	read := func(c *Counters) { reads++ }
	var ivs []Interval
	s := NewSampler(eng, 10, false, read, func(iv Interval) { ivs = append(ivs, iv) })
	eng.AdvanceTo(55)
	s.Finish(55)
	if len(ivs) != 6 {
		t.Fatalf("got %d intervals, want 6 (5 grid + final partial): %+v", len(ivs), ivs)
	}
	for _, iv := range ivs {
		if iv.Insts != 0 || iv.L1D.Accesses != 0 {
			t.Fatalf("idle interval carries activity: %+v", iv)
		}
	}
	if got := Sum(ivs); got.StartCycle != 0 || got.EndCycle != 55 {
		t.Fatalf("idle span [%d,%d], want [0,55]", got.StartCycle, got.EndCycle)
	}
	if reads < 6 {
		t.Fatalf("sampler stopped re-arming: %d reads", reads)
	}

	// Finish landing exactly on a just-cut boundary must be a no-op.
	s.Finish(55)
	if len(ivs) != 6 {
		t.Fatalf("duplicate boundary emitted: %d intervals", len(ivs))
	}
}

func TestSamplerZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval must panic")
		}
	}()
	NewSampler(sim.NewEngine(), 0, false, func(*Counters) {}, func(Interval) {})
}

func TestWriteIntervalsFormats(t *testing.T) {
	ivs := []Interval{
		{Index: 0, Warmup: true, StartCycle: 0, EndCycle: 100, Insts: 80,
			L1D: cache.Stats{Accesses: 40, Hits: 30, Misses: 10},
			Mem: mem.Stats{Reads: 5, TotalReadLatency: 350}},
		{Index: 1, StartCycle: 100, EndCycle: 250, Insts: 200,
			L1Bus: BusCounters{Transfers: 10, BusyCycles: 50}},
	}
	var text, csv, js bytes.Buffer
	if err := WriteIntervals(&text, "text", ivs); err != nil {
		t.Fatal(err)
	}
	if err := WriteIntervals(&csv, "csv", ivs); err != nil {
		t.Fatal(err)
	}
	if err := WriteIntervals(&js, "json", ivs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "ipc") || !strings.Contains(text.String(), "0.8000") {
		t.Errorf("text output missing derived IPC:\n%s", text.String())
	}
	if lines := strings.Split(strings.TrimSpace(csv.String()), "\n"); len(lines) != 3 {
		t.Errorf("csv must have header + 2 rows:\n%s", csv.String())
	}
	var back []Interval
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("json round-trip: %v", err)
	}
	if len(back) != 2 || back[0] != ivs[0] || back[1] != ivs[1] {
		t.Errorf("json round-trip diverged:\n got %+v\nwant %+v", back, ivs)
	}
	if err := WriteIntervals(io.Discard, "yaml", ivs); err == nil {
		t.Error("unknown format must error")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestJSONLStickyErrorAndRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	for i := 0; i < 3; i++ {
		if err := j.Write(map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int
	err := ReadJSONL(&buf, func(line []byte) error {
		var m map[string]int
		if err := json.Unmarshal(line, &m); err != nil {
			return err
		}
		got = append(got, m["i"])
		return nil
	})
	if err != nil || len(got) != 3 || got[2] != 2 {
		t.Fatalf("round-trip: %v %v", got, err)
	}

	fw := &failWriter{n: 1}
	j2 := NewJSONL(fw)
	if err := j2.Write("ok"); err != nil {
		t.Fatal(err)
	}
	if err := j2.Write("boom"); err == nil {
		t.Fatal("write to full disk must error")
	}
	if err := j2.Write("later"); err == nil || j2.Err() == nil {
		t.Fatal("error must be sticky")
	}

	bad := strings.NewReader("{\"ok\":1}\nnot json\n")
	err = ReadJSONL(bad, func(line []byte) error {
		var m map[string]any
		return json.Unmarshal(line, &m)
	})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line must name its line number, got %v", err)
	}
}

func TestMetricsEndpointServesVarsAndPprof(t *testing.T) {
	m := NewMetrics()
	cells := 0
	m.Register("cells_done", func() any { cells++; return cells })
	m.Register("campaign", func() any { return "tiny" })

	srv, err := Serve("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	for _, path := range []string{"/metrics", "/debug/vars"} {
		code, body := get(path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", path, code)
		}
		var vars map[string]any
		if err := json.Unmarshal([]byte(body), &vars); err != nil {
			t.Fatalf("%s is not JSON: %v\n%s", path, err, body)
		}
		if vars["campaign"] != "tiny" {
			t.Errorf("%s: campaign=%v", path, vars["campaign"])
		}
		if _, ok := vars["cells_done"].(float64); !ok {
			t.Errorf("%s: cells_done missing: %v", path, vars)
		}
	}
	if cells < 2 {
		t.Errorf("gauge callback must be re-evaluated per scrape, got %d calls", cells)
	}

	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d\n%s", code, body)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", code)
	}
}

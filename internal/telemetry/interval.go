// Package telemetry is the observability layer of the platform: it
// turns the simulator's cumulative counters into time-resolved
// interval series, campaign executions into append-only JSONL run
// journals, and long-running sweeps into live-inspectable processes
// (an expvar-style metrics endpoint plus net/http/pprof).
//
// The design rule throughout is *pull, don't hook*: nothing in this
// package intercepts per-event simulation work. The interval sampler
// snapshots the cumulative counters the models already keep
// (cache.Stats, mem.Stats, bus counters, committed instructions) at
// cycle boundaries and emits the deltas, so the kernel's
// zero-allocation steady state is untouched and a run with telemetry
// disabled executes exactly the same instructions as before the
// package existed.
package telemetry

import (
	"microlib/internal/cache"
	"microlib/internal/mem"
	"microlib/internal/sim"
)

// BusCounters are the cumulative counters of one interconnect, as
// returned by bus.Bus.Stats.
type BusCounters struct {
	Transfers  uint64 `json:"transfers"`
	BusyCycles uint64 `json:"busy_cycles"`
	WaitCycles uint64 `json:"wait_cycles"`
}

// Sub returns the counter deltas b - prev.
func (b BusCounters) Sub(prev BusCounters) BusCounters {
	return BusCounters{
		Transfers:  b.Transfers - prev.Transfers,
		BusyCycles: b.BusyCycles - prev.BusyCycles,
		WaitCycles: b.WaitCycles - prev.WaitCycles,
	}
}

// Add returns the counter sums b + other.
func (b BusCounters) Add(other BusCounters) BusCounters {
	return BusCounters{
		Transfers:  b.Transfers + other.Transfers,
		BusyCycles: b.BusyCycles + other.BusyCycles,
		WaitCycles: b.WaitCycles + other.WaitCycles,
	}
}

// Counters is one instantaneous snapshot of every cumulative counter
// the sampler tracks. The sampler's read callback fills it in place
// (no allocation on the sampling path).
type Counters struct {
	Cycle uint64
	Insts uint64 // committed instructions
	L1D   cache.Stats
	L1I   cache.Stats
	L2    cache.Stats
	Mem   mem.Stats
	L1Bus BusCounters
	FSB   BusCounters
}

// Interval is the delta between two consecutive counter snapshots: a
// time-resolved slice of one simulation. Counter fields are exact
// deltas — summing the intervals of a run reproduces the whole-run
// totals bit for bit (the loss-free contract runner tests pin).
type Interval struct {
	// Index numbers intervals from 0 in emission order.
	Index int `json:"index"`
	// Warmup marks intervals that ended at or before the warm-up
	// boundary; the runner's measured statistics exclude them. The
	// boundary itself always ends an interval, so measured intervals
	// sum exactly to the measured whole-run stats.
	Warmup bool `json:"warmup,omitempty"`
	// StartCycle/EndCycle delimit the interval: (StartCycle, EndCycle]
	// in simulated CPU cycles.
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`
	// Insts is the number of instructions committed in the interval.
	Insts uint64 `json:"insts"`

	L1D   cache.Stats `json:"l1d"`
	L1I   cache.Stats `json:"l1i"`
	L2    cache.Stats `json:"l2"`
	Mem   mem.Stats   `json:"mem"`
	L1Bus BusCounters `json:"l1bus"`
	FSB   BusCounters `json:"fsb"`
}

// Cycles returns the interval length in simulated cycles.
func (iv Interval) Cycles() uint64 { return iv.EndCycle - iv.StartCycle }

// IPC returns committed instructions per cycle inside the interval.
func (iv Interval) IPC() float64 {
	if iv.Cycles() == 0 {
		return 0
	}
	return float64(iv.Insts) / float64(iv.Cycles())
}

// BusOccupancy returns the fraction of the interval's cycles the
// given bus counters held the interconnect busy.
func (iv Interval) BusOccupancy(b BusCounters) float64 {
	if iv.Cycles() == 0 {
		return 0
	}
	occ := float64(b.BusyCycles) / float64(iv.Cycles())
	if occ > 1 {
		// A transfer reserved near the interval edge charges its full
		// occupancy to the reserving interval; clamp the ratio.
		occ = 1
	}
	return occ
}

// Sum folds a series of intervals into one covering their whole span:
// counters add, the span runs from the first start to the last end,
// and Warmup is true only when every summed interval is warm-up. An
// empty series sums to the zero Interval.
func Sum(ivs []Interval) Interval {
	var out Interval
	for i, iv := range ivs {
		if i == 0 {
			out = iv
			continue
		}
		out.EndCycle = iv.EndCycle
		out.Insts += iv.Insts
		out.L1D = addCacheStats(out.L1D, iv.L1D)
		out.L1I = addCacheStats(out.L1I, iv.L1I)
		out.L2 = addCacheStats(out.L2, iv.L2)
		out.Mem = addMemStats(out.Mem, iv.Mem)
		out.L1Bus = out.L1Bus.Add(iv.L1Bus)
		out.FSB = out.FSB.Add(iv.FSB)
		out.Warmup = out.Warmup && iv.Warmup
	}
	return out
}

// addCacheStats sums two cache counter deltas. Stats.Sub is the
// inverse: addCacheStats(a.Sub(b), b) == a.
func addCacheStats(a, b cache.Stats) cache.Stats {
	return a.Sub(cache.Stats{}.Sub(b))
}

// addMemStats sums two memory counter deltas via the same
// subtract-the-negation identity (uint64 arithmetic wraps).
func addMemStats(a, b mem.Stats) mem.Stats {
	return a.Sub(mem.Stats{}.Sub(b))
}

// Sampler emits interval deltas from a read callback, driven by the
// simulation engine's own calendar: one pooled event every Every
// cycles (re-armed from its handler), one forced cut at the warm-up
// boundary, and a final flush at end of run. It schedules through
// AtFunc, so steady-state sampling allocates nothing, and because the
// handler only *reads* counters, a sampled run is bit-identical to an
// unsampled one — the extra calendar events fire in cycles where the
// host core provably does no work.
type Sampler struct {
	eng   *sim.Engine
	every uint64
	read  func(*Counters)
	sink  func(Interval)

	prev Counters
	idx  int
	warm bool // still inside the warm-up phase
	cur  Counters
}

// NewSampler builds a sampler cutting every `every` cycles. read must
// fill the passed Counters with the current cumulative totals; sink
// receives each finished interval. warmup marks whether the run
// starts in a warm-up phase (EndWarmup must then be called at the
// boundary).
func NewSampler(eng *sim.Engine, every uint64, warmup bool, read func(*Counters), sink func(Interval)) *Sampler {
	if every == 0 {
		panic("telemetry: zero sampling interval")
	}
	s := &Sampler{eng: eng, every: every, read: read, sink: sink, warm: warmup}
	s.read(&s.prev) // base snapshot at the current cycle
	s.eng.AtFunc(s.eng.Now()+every, samplerFire, s, nil, 0, 0)
	return s
}

// samplerFire is the static re-arming calendar trampoline.
func samplerFire(now uint64, o1, _ any, _, _ uint64) {
	s := o1.(*Sampler)
	s.cut(now)
	s.eng.AtFunc(now+s.every, samplerFire, s, nil, 0, 0)
}

// cut emits the interval since the previous boundary and re-bases.
// The boundary cycle is passed explicitly: grid cuts fire with the
// engine clock exactly at the boundary, but the scalar core's warm-up
// commit can run ahead of the engine clock (it batches AdvanceTo
// calls), so forced cuts supply the core-reported cycle instead of
// Engine.Now. An interval with zero activity is still emitted — dead
// time is real time in the series — but a cut that advances nothing
// at all (a forced boundary coinciding with a grid cut) is skipped so
// the series never carries duplicate boundaries.
func (s *Sampler) cut(cycle uint64) {
	s.cur = Counters{}
	s.read(&s.cur)
	s.cur.Cycle = cycle
	if s.cur == s.prev {
		return
	}
	iv := Interval{
		Index:      s.idx,
		Warmup:     s.warm,
		StartCycle: s.prev.Cycle,
		EndCycle:   s.cur.Cycle,
		Insts:      s.cur.Insts - s.prev.Insts,
		L1D:        s.cur.L1D.Sub(s.prev.L1D),
		L1I:        s.cur.L1I.Sub(s.prev.L1I),
		L2:         s.cur.L2.Sub(s.prev.L2),
		Mem:        s.cur.Mem.Sub(s.prev.Mem),
		L1Bus:      s.cur.L1Bus.Sub(s.prev.L1Bus),
		FSB:        s.cur.FSB.Sub(s.prev.FSB),
	}
	s.prev = s.cur
	s.idx++
	s.sink(iv)
}

// EndWarmup forces an interval boundary at the warm-up commit point,
// at the core-reported cycle. The runner calls it from the same
// instant it snapshots its own warm-up statistics, so the measured
// intervals that follow sum exactly to the measured whole-run
// counters.
func (s *Sampler) EndWarmup(cycle uint64) {
	s.cut(cycle)
	s.warm = false
}

// Finish emits the final partial interval at end of run, closing the
// series at the core-reported final cycle. The engine may still hold
// the sampler's next pending event; the run is over, so it simply
// never fires.
func (s *Sampler) Finish(cycle uint64) {
	s.cut(cycle)
}

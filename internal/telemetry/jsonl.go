package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONL writes an append-only stream of JSON objects, one per line —
// the journal substrate. It is safe for concurrent use (campaign
// workers finish cells in parallel) and sticky on error: after the
// first write failure every later Write is a no-op and Err reports
// the original cause, so a full disk surfaces once, loudly, instead
// of as a torn half-journal.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL wraps w as a line-oriented JSON event stream.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Write appends one event as a single JSON line.
func (j *JSONL) Write(event any) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.enc.Encode(event); err != nil {
		j.err = fmt.Errorf("telemetry: journal write: %w", err)
		return j.err
	}
	return nil
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadJSONL decodes every line of a JSONL stream into out's element
// type via the decode callback, reporting the 1-based line number of
// the first malformed line. Blank lines are skipped (a journal never
// writes them, but hand-edited files may).
func ReadJSONL(r io.Reader, decode func(line []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := decode(line); err != nil {
			return fmt.Errorf("telemetry: journal line %d: %w", n, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("telemetry: journal read: %w", err)
	}
	return nil
}

package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONL writes an append-only stream of JSON objects, one per line —
// the journal substrate. It is safe for concurrent use (campaign
// workers finish cells in parallel) and sticky on error: after the
// first write failure every later Write is a no-op and Err reports
// the original cause, so a full disk surfaces once, loudly, instead
// of as a torn half-journal.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL wraps w as a line-oriented JSON event stream.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Write appends one event as a single JSON line.
func (j *JSONL) Write(event any) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.enc.Encode(event); err != nil {
		j.err = fmt.Errorf("telemetry: journal write: %w", err)
		return j.err
	}
	return nil
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Fail injects err as the sticky write error (if none is recorded
// yet): every later Write is a no-op reporting it. The fault-
// injection harness uses it to simulate the journal's disk filling
// mid-run without wrapping the underlying writer.
func (j *JSONL) Fail(err error) {
	if err == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == nil {
		j.err = err
	}
}

// TornTailError marks a stream whose final line is malformed — the
// signature of a writer killed mid-record (SIGKILL, power loss).
// ReadJSONL callers that expect crash debris (campaign resume)
// unwrap it and keep the intact prefix; everything else treats it as
// the error it wraps.
type TornTailError struct {
	Line int // 1-based line number of the torn line
	Err  error
}

func (e *TornTailError) Error() string {
	return fmt.Sprintf("telemetry: journal torn at line %d: %v", e.Line, e.Err)
}

func (e *TornTailError) Unwrap() error { return e.Err }

// ReadJSONL decodes every line of a JSONL stream via the decode
// callback. Blank lines are skipped (a journal never writes them,
// but hand-edited files may). A malformed line fails with its
// 1-based line number — as a *TornTailError when it is the final
// line (a crashed writer's torn record; the decoded prefix is
// intact), or a plain error when well-formed lines follow it (real
// corruption, not a crash artifact).
func ReadJSONL(r io.Reader, decode func(line []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	var pending *TornTailError
	for sc.Scan() {
		n++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pending != nil {
			// The malformed line was not the last: mid-file damage.
			return fmt.Errorf("telemetry: journal line %d: %w", pending.Line, pending.Err)
		}
		if err := decode(line); err != nil {
			pending = &TornTailError{Line: n, Err: err}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("telemetry: journal read: %w", err)
	}
	if pending != nil {
		return pending
	}
	return nil
}

package hwcost

import (
	"testing"
	"testing/quick"
)

func TestAreaMonotonicInBytes(t *testing.T) {
	err := quick.Check(func(kbRaw uint8) bool {
		kb := int(kbRaw%200) + 1
		small := Array{Bytes: kb << 10, Assoc: 4, Ports: 1}
		big := Array{Bytes: (kb + 1) << 10, Assoc: 4, Ports: 1}
		return big.AreaMM2() > small.AreaMM2()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnergyGrowsWithSizeAndWays(t *testing.T) {
	a := Array{Bytes: 8 << 10, Assoc: 1, Ports: 1}
	b := Array{Bytes: 2 << 20, Assoc: 1, Ports: 1}
	if b.EnergyPJ() <= a.EnergyPJ() {
		t.Fatal("energy not growing with capacity")
	}
	c := Array{Bytes: 8 << 10, Assoc: 8, Ports: 1}
	if c.EnergyPJ() <= a.EnergyPJ() {
		t.Fatal("energy not growing with associativity")
	}
	d := Array{Bytes: 8 << 10, Assoc: 1, Ports: 4}
	if d.EnergyPJ() <= a.EnergyPJ() {
		t.Fatal("energy not growing with ports")
	}
}

func TestAreaRatioOrdering(t *testing.T) {
	// The paper's Figure 5 structure: Markov (1MB) and DBCP (2MB)
	// dwarf SP (8KB) and TP (tag bits).
	markov := AreaRatio([]Array{{Bytes: 1 << 20, Assoc: 1, Ports: 1}})
	dbcp := AreaRatio([]Array{{Bytes: 2 << 20, Assoc: 8, Ports: 1}})
	sp := AreaRatio([]Array{{Bytes: 8 << 10, Assoc: 1, Ports: 1}})
	tp := AreaRatio([]Array{{Bytes: 2 << 10, Assoc: 1, Ports: 1}})
	if !(dbcp > markov && markov > sp && sp > tp) {
		t.Fatalf("area ordering broken: dbcp=%.3f markov=%.3f sp=%.3f tp=%.3f", dbcp, markov, sp, tp)
	}
	if markov < 0.5 {
		t.Fatalf("1MB table should approach the base caches' area, got ratio %.3f", markov)
	}
	if tp > 0.05 {
		t.Fatalf("tag bits should be nearly free, got ratio %.3f", tp)
	}
}

func TestPowerRatioActivity(t *testing.T) {
	base := uint64(1_000_000)
	perAccess := BaseEnergyPerAccessPJ()
	idle := PowerRatio(base, perAccess, []Activity{{
		Array: Array{Bytes: 1 << 20, Assoc: 1, Ports: 1},
	}})
	if idle != 1 {
		t.Fatalf("inactive mechanism power ratio %.3f, want 1", idle)
	}
	busy := PowerRatio(base, perAccess, []Activity{{
		Array: Array{Bytes: 1 << 20, Assoc: 1, Ports: 1},
		Reads: 4_000_000,
	}})
	if busy <= 1.1 {
		t.Fatalf("hyperactive big table barely shows: %.3f", busy)
	}
	// GHB-style: tiny table, huge activity, still expensive.
	ghb := PowerRatio(base, perAccess, []Activity{{
		Array: Array{Bytes: 3 << 10, Assoc: 1, Ports: 1},
		Reads: 8_000_000,
	}})
	spLike := PowerRatio(base, perAccess, []Activity{{
		Array: Array{Bytes: 8 << 10, Assoc: 1, Ports: 1},
		Reads: 500_000,
	}})
	if ghb <= spLike {
		t.Fatalf("activity-dominated power inverted: ghb=%.3f sp=%.3f", ghb, spLike)
	}
}

func TestBaseline(t *testing.T) {
	if BaselineAreaMM2() <= 0 {
		t.Fatal("baseline area not positive")
	}
	if BaseEnergyPerAccessPJ() <= 0 {
		t.Fatal("baseline energy not positive")
	}
	if PowerRatio(0, 1, nil) != 1 {
		t.Fatal("zero-activity base must return ratio 1")
	}
}

func TestFullyAssociativeNorm(t *testing.T) {
	fa := Array{Bytes: 512, Assoc: 0, Ports: 1}
	if fa.AreaMM2() <= (Array{Bytes: 512, Assoc: 1, Ports: 1}).AreaMM2() {
		t.Fatal("fully associative array not costlier than direct-mapped")
	}
	if fa.LeakageMW() <= 0 {
		t.Fatal("leakage not positive")
	}
}

// Package hwcost is MicroLib's stand-in for the CACTI 3.2 area model
// and the XCACTI power model the paper uses for its Figure 5: an
// analytical SRAM model good for *relative* comparisons between the
// mechanisms' hardware structures and the base caches.
//
// Area scales with capacity (cells dominate) plus decoder, sense-amp
// and comparator overheads that grow with associativity and ports.
// Dynamic energy per access scales with the square root of capacity
// (bitline/wordline halves) times associativity (ways read in
// parallel) times port loading. These are the first-order CACTI
// asymptotics; absolute calibration is irrelevant for the paper's
// ratios.
package hwcost

import "math"

// Technology constants for a ~130nm-class process (the paper's
// timeframe), chosen so a 32 KB L1 lands near 1 mm² and ~0.4 nJ per
// access. Only ratios matter downstream.
const (
	bitAreaUM2       = 1.2   // SRAM cell + wiring, um² per bit
	decoderBaseUM2   = 4000  // fixed decoder/control overhead per array
	senseAmpUM2      = 180   // per way per 64 bits of output
	comparatorUM2    = 350   // per way (tag match)
	portAreaFactor   = 0.45  // extra area per port beyond the first
	energyBasePJ     = 18    // access energy floor, pJ
	energyPerSqrtBit = 0.55  // pJ per sqrt(bit) of array reach
	energyPerWayPJ   = 9     // pJ per extra way activated
	leakagePWPerBit  = 0.012 // static power, pW per bit (unused in ratios)
)

// Array describes one SRAM structure.
type Array struct {
	Bytes int
	Assoc int // 0 = fully associative
	Ports int
}

func (a Array) norm() Array {
	if a.Bytes < 8 {
		a.Bytes = 8
	}
	if a.Ports < 1 {
		a.Ports = 1
	}
	if a.Assoc <= 0 {
		// Fully associative: every entry has a comparator; model as
		// assoc = entries capped for sanity.
		a.Assoc = a.Bytes / 8
		if a.Assoc > 64 {
			a.Assoc = 64
		}
		if a.Assoc < 1 {
			a.Assoc = 1
		}
	}
	return a
}

// AreaMM2 returns the array area in mm².
func (a Array) AreaMM2() float64 {
	a = a.norm()
	bits := float64(a.Bytes) * 8
	um2 := bits*bitAreaUM2 +
		decoderBaseUM2 +
		float64(a.Assoc)*(senseAmpUM2+comparatorUM2)
	um2 *= 1 + portAreaFactor*float64(a.Ports-1)
	return um2 / 1e6
}

// EnergyPJ returns the dynamic energy of one access in picojoules.
func (a Array) EnergyPJ() float64 {
	a = a.norm()
	bits := float64(a.Bytes) * 8
	pj := energyBasePJ +
		energyPerSqrtBit*math.Sqrt(bits) +
		energyPerWayPJ*float64(a.Assoc-1)
	pj *= 1 + 0.3*float64(a.Ports-1)
	return pj
}

// LeakageMW returns static power in milliwatts (reported for
// completeness; Figure 5 uses dynamic ratios).
func (a Array) LeakageMW() float64 {
	a = a.norm()
	return float64(a.Bytes) * 8 * leakagePWPerBit / 1e9
}

// Activity pairs an array with its observed access counts.
type Activity struct {
	Array
	Reads, Writes uint64
}

// EnergyTotalPJ integrates the activity.
func (act Activity) EnergyTotalPJ() float64 {
	return float64(act.Reads+act.Writes) * act.EnergyPJ()
}

// BaselineCaches returns the Table 1 cache arrays (L1D, L1I, L2),
// the reference against which Figure 5 normalizes.
func BaselineCaches() []Array {
	return []Array{
		{Bytes: 32 << 10, Assoc: 1, Ports: 4}, // L1D
		{Bytes: 32 << 10, Assoc: 4, Ports: 1}, // L1I
		{Bytes: 1 << 20, Assoc: 4, Ports: 1},  // L2
	}
}

// BaselineAreaMM2 sums the baseline cache area.
func BaselineAreaMM2() float64 {
	total := 0.0
	for _, a := range BaselineCaches() {
		total += a.AreaMM2()
	}
	return total
}

// AreaRatio returns mechanism area over baseline cache area — the
// paper's Figure 5 cost metric.
func AreaRatio(mech []Array) float64 {
	total := 0.0
	for _, a := range mech {
		total += a.AreaMM2()
	}
	return total / BaselineAreaMM2()
}

// PowerRatio returns (base cache energy + mechanism energy) over
// base cache energy for a run: the paper's Figure 5 relative power
// increase. baseAccesses approximates the demand activity of the
// baseline caches; mech carries the mechanism tables' activity.
func PowerRatio(baseAccesses uint64, baseEnergyPerAccessPJ float64, mech []Activity) float64 {
	baseE := float64(baseAccesses) * baseEnergyPerAccessPJ
	if baseE == 0 {
		return 1
	}
	mechE := 0.0
	for _, m := range mech {
		mechE += m.EnergyTotalPJ()
	}
	return (baseE + mechE) / baseE
}

// BaseEnergyPerAccessPJ returns a representative per-access energy of
// the baseline hierarchy (weighted toward the L1s, which see most of
// the traffic).
func BaseEnergyPerAccessPJ() float64 {
	caches := BaselineCaches()
	return 0.45*caches[0].EnergyPJ() + 0.35*caches[1].EnergyPJ() + 0.20*caches[2].EnergyPJ()
}

// Command mlvet runs MicroLib's static-analysis suite: four
// analyzers (detorder, simpure, hotalloc, errkind) that enforce the
// repo's determinism, zero-alloc and fault-taxonomy invariants at
// compile time, plus a compiler escape-analysis gate.
//
// Usage:
//
//	mlvet [packages]                 # analyzers; default ./...
//	mlvet -escapes                   # diff kernel heap escapes vs baseline
//	mlvet -escapes -write-escapes    # regenerate the baseline
//
// Exit status is 1 when any finding (or escape regression) remains.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"microlib/internal/lint"
)

func main() {
	escapes := flag.Bool("escapes", false, "run the compiler escape-analysis gate over the kernel packages instead of the analyzers")
	writeEscapes := flag.Bool("write-escapes", false, "with -escapes: rewrite the baseline from the current compiler output")
	verbose := flag.Bool("v", false, "print run statistics")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mlvet [-escapes [-write-escapes]] [-v] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *escapes {
		os.Exit(runEscapes(*writeEscapes))
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, stats, err := lint.Check("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "mlvet: %d packages, %d hot-path roots, %d worker roots, %d findings\n",
			stats.Packages, stats.HotRoots, stats.WorkerRoots, len(diags))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mlvet: %d findings\n", len(diags))
		os.Exit(1)
	}
}

// runEscapes executes the -escapes gate from wherever mlvet is
// invoked, anchored at the module root.
func runEscapes(write bool) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlvet:", err)
		return 2
	}
	current, err := lint.Escapes(root, lint.EscapePkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlvet:", err)
		return 2
	}
	baselinePath := filepath.Join(root, lint.EscapeBaselineFile)
	if write {
		if err := lint.WriteBaseline(baselinePath, current); err != nil {
			fmt.Fprintln(os.Stderr, "mlvet:", err)
			return 2
		}
		fmt.Printf("mlvet: wrote %d escape facts to %s\n", len(current), lint.EscapeBaselineFile)
		return 0
	}
	baseline, err := lint.ReadBaseline(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlvet:", err)
		return 2
	}
	added, stale := lint.EscapeDiff(current, baseline)
	for _, a := range added {
		fmt.Printf("%s: new heap escape on a kernel package (not in %s)\n", a, lint.EscapeBaselineFile)
	}
	for _, s := range stale {
		fmt.Printf("%s: stale baseline entry (escape no longer reported; regenerate with -write-escapes)\n", s)
	}
	if len(added)+len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "mlvet: escape gate: %d new, %d stale (baseline %d, current %d)\n",
			len(added), len(stale), len(baseline), len(current))
		return 1
	}
	fmt.Printf("mlvet: escape gate clean (%d baselined escapes)\n", len(current))
	return 0
}

// moduleRoot locates the enclosing module directory.
func moduleRoot() (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go list -m: %v\n%s", err, stderr.String())
	}
	dir := strings.TrimSpace(out.String())
	if dir == "" {
		return "", fmt.Errorf("not inside a module")
	}
	return dir, nil
}

// Command microsim runs a single MicroLib simulation: one benchmark,
// one mechanism, one hierarchy configuration, and prints the
// statistics.
//
// Any config field of the simulated system — cache geometry, SDRAM
// timing, CPU window sizes — can be overridden by dotted path with
// the repeatable -set flag (`mlcampaign paths` prints the namespace):
//
//	microsim -bench gzip -mech GHB -insts 150000 -warmup 50000
//	microsim -bench mcf -set cpu.ruu=32 -set cpu.lsq=32 -set hier.l1d.assoc=2
//	microsim -list
//
// With -interval N the run additionally emits a time-resolved
// telemetry series: one row of exact counter deltas (IPC, cache miss
// ratios, bus occupancy, SDRAM traffic) every N simulated cycles,
// as text, CSV or JSON:
//
//	microsim -bench mcf -mech GHB -interval 10000
//	microsim -bench art -interval 5000 -interval-format csv -interval-out art.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"microlib"
)

func main() {
	var sets microlib.SetFlags
	flag.Var(&sets, "set", "set a config field by dotted path, e.g. -set cpu.ruu=64 (repeatable; mlcampaign paths lists them)")
	var (
		bench   = flag.String("bench", "gzip", "benchmark name (see -list)")
		mech    = flag.String("mech", microlib.BaseMechanism, "mechanism name (see -list)")
		insts   = flag.Uint64("insts", 150_000, "measured instructions")
		warmup  = flag.Uint64("warmup", 50_000, "warm-up instructions before measurement")
		skip    = flag.Uint64("skip", 0, "instructions to skip before the trace window")
		seed    = flag.Uint64("seed", 42, "workload generator seed")
		memory  = flag.String("memory", "sdram", "memory model: sdram, const70, sdram70")
		inorder = flag.Bool("inorder", false, "use the scalar in-order host core")
		queue   = flag.Int("queue", 0, "force prefetch request queue size (0 = mechanism default)")
		pfd     = flag.Bool("prefetch-as-demand", false, "treat prefetches like demand accesses (disable demand priority; design-choice ablation)")
		list    = flag.Bool("list", false, "list benchmarks and mechanisms")

		interval    = flag.Uint64("interval", 0, "emit a telemetry interval every N simulated cycles (0 = off)")
		intervalFmt = flag.String("interval-format", "text", "interval series format: text, csv, json")
		intervalOut = flag.String("interval-out", "", "write the interval series to a file instead of stdout")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", strings.Join(microlib.Benchmarks(), " "))
		fmt.Println("mechanisms:", microlib.BaseMechanism, strings.Join(microlib.Mechanisms(), " "))
		return
	}

	opts := microlib.NewOptions(*bench, *mech)
	opts.Insts = *insts
	opts.Warmup = *warmup
	opts.Skip = *skip
	opts.Seed = *seed
	opts.InOrder = *inorder
	opts.QueueOverride = *queue
	opts.PrefetchAsDemand = *pfd
	// -memory is shorthand for -set hier.mem.kind=...; an explicit
	// -set (applied after) wins.
	if err := microlib.SetOptionField(&opts, "hier.mem.kind", *memory); err != nil {
		fmt.Fprintf(os.Stderr, "microsim: unknown memory model %q\n", *memory)
		os.Exit(2)
	}
	if err := sets.Apply(&opts); err != nil {
		fmt.Fprintln(os.Stderr, "microsim:", err)
		os.Exit(2)
	}
	// -queue force-sets both caps after mechanism attach, so it would
	// silently discard an explicit cap -set.
	if *queue > 0 {
		for _, kv := range sets {
			p, _, _ := strings.Cut(kv, "=")
			for _, cp := range microlib.QueueOverrideConflictPaths() {
				if p == cp {
					fmt.Fprintf(os.Stderr, "microsim: -set %s conflicts with -queue %d (the override forces both caps)\n", p, *queue)
					os.Exit(2)
				}
			}
		}
	}

	var intervals []microlib.TelemetryInterval
	if *interval > 0 {
		valid := false
		for _, f := range microlib.IntervalFormats() {
			valid = valid || f == *intervalFmt
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "microsim: unknown interval format %q (want %s)\n",
				*intervalFmt, strings.Join(microlib.IntervalFormats(), ", "))
			os.Exit(2)
		}
		opts.Interval = *interval
		opts.IntervalSink = func(iv microlib.TelemetryInterval) { intervals = append(intervals, iv) }
	}

	res, err := microlib.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "microsim:", err)
		os.Exit(1)
	}

	fmt.Printf("bench=%s mech=%s insts=%d cycles=%d\n", res.Bench, res.Mechanism, res.CPU.Insts, res.CPU.Cycles)
	fmt.Printf("IPC           %10.4f\n", res.IPC)
	fmt.Printf("L1D           acc=%d hits=%d misses=%d missRatio=%.4f auxHits=%d\n",
		res.L1D.Accesses, res.L1D.Hits, res.L1D.Misses, res.L1D.MissRatio(), res.L1D.AuxHits)
	fmt.Printf("L1I           acc=%d misses=%d\n", res.L1I.Accesses, res.L1I.Misses)
	fmt.Printf("L2            acc=%d hits=%d misses=%d\n", res.L2.Accesses, res.L2.Hits, res.L2.Misses)
	fmt.Printf("prefetch      issued=%d useful=%d dropped=%d dup=%d (L1D+L2)\n",
		res.L1D.PrefetchIssued+res.L2.PrefetchIssued,
		res.L1D.PrefetchUseful+res.L2.PrefetchUseful,
		res.L1D.PrefetchDropped+res.L2.PrefetchDropped,
		res.L1D.PrefetchDup+res.L2.PrefetchDup)
	fmt.Printf("memory        reads=%d writes=%d avgReadLat=%.1f rowHits=%d rowConf=%d\n",
		res.Mem.Reads, res.Mem.Writes, res.Mem.AvgReadLatency(), res.Mem.RowHits, res.Mem.RowConflicts)
	if len(res.Hardware) > 0 {
		fmt.Println("mechanism hardware:")
		for _, t := range res.Hardware {
			fmt.Printf("  %-16s %8d B assoc=%d reads=%d writes=%d\n", t.Label, t.Bytes, t.Assoc, t.Reads, t.Writes)
		}
	}

	if *interval > 0 {
		out := os.Stdout
		if *intervalOut != "" {
			f, err := os.Create(*intervalOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "microsim:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		} else {
			fmt.Printf("interval series (every %d cycles, %d intervals):\n", *interval, len(intervals))
		}
		if err := microlib.WriteIntervals(out, *intervalFmt, intervals); err != nil {
			fmt.Fprintln(os.Stderr, "microsim:", err)
			os.Exit(1)
		}
		if *intervalOut != "" {
			fmt.Fprintf(os.Stderr, "microsim: interval series written to %s\n", *intervalOut)
		}
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// binary builds mlcampaign once per test binary and returns its path.
func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "mlcampaign-e2e")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "mlcampaign")
		out, err := exec.Command("go", "build", "-o", buildBin, "microlib/cmd/mlcampaign").CombinedOutput()
		if err != nil {
			buildErr = err
			buildBin = ""
			os.RemoveAll(dir)
			os.Stderr.Write(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building mlcampaign: %v", buildErr)
	}
	return buildBin
}

func writeSpec(t *testing.T, dir string, insts uint64) string {
	t.Helper()
	path := filepath.Join(dir, "spec.json")
	spec := map[string]any{
		"name":       "e2e",
		"benchmarks": []string{"gzip", "mcf"},
		"mechanisms": []string{"Base", "TP"},
		"seeds":      []uint64{1, 2},
		"insts":      []uint64{insts},
		"warmup":     500,
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !asExitError(err, &ee) {
		t.Fatalf("process did not run: %v", err)
	}
	return ee.ExitCode()
}

func asExitError(err error, target **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*target = ee
	}
	return ok
}

// scenariosOf extracts the scenario table from a JSON report — the
// part of the aggregate that must be invariant across interruption.
func scenariosOf(t *testing.T, reportPath string) json.RawMessage {
	t.Helper()
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Scenarios json.RawMessage `json:"scenarios"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report %s: %v", reportPath, err)
	}
	if len(rep.Scenarios) == 0 {
		t.Fatalf("report %s has no scenarios", reportPath)
	}
	return rep.Scenarios
}

// The ship-blocking smoke: SIGTERM a sweep partway through, resume it
// from the journal, and the final aggregate matches an uninterrupted
// run byte for byte.
func TestSigtermThenResumeMatchesUninterrupted(t *testing.T) {
	bin := binary(t)
	dir := t.TempDir()
	spec := writeSpec(t, dir, 400_000)

	// Reference: uninterrupted run.
	refReport := filepath.Join(dir, "ref.json")
	cmd := exec.Command(bin, "run", "-spec", spec,
		"-cache", filepath.Join(dir, "refcache"),
		"-workers", "1", "-quiet", "-format", "json", "-out", refReport)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}

	// Interrupted run: SIGTERM once the journal shows progress.
	journal := filepath.Join(dir, "run.jsonl")
	cache := filepath.Join(dir, "cache")
	var stderr bytes.Buffer
	run := exec.Command(bin, "run", "-spec", spec,
		"-cache", cache, "-journal", journal, "-workers", "1", "-quiet")
	run.Stderr = &stderr
	if err := run.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			run.Process.Kill()
			t.Fatalf("no progress before deadline; journal:\n%s\nstderr:\n%s", mustReadFile(journal), stderr.String())
		}
		if bytes.Count(mustReadFile(journal), []byte(`"ev":"cell_done"`)) >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := run.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := run.Wait()
	if code := exitCode(t, err); code != 130 {
		t.Fatalf("interrupted run must exit 130, got %d\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "mlcampaign resume") {
		t.Fatalf("interruption must print the resume hint:\n%s", stderr.String())
	}

	// status on the killed run: incomplete, nonzero exit.
	st := exec.Command(bin, "status", journal)
	stOut, err := st.CombinedOutput()
	if code := exitCode(t, err); code != 1 {
		t.Fatalf("status on an unfinished journal must exit 1, got %d\n%s", code, stOut)
	}

	// Resume and compare.
	resReport := filepath.Join(dir, "resumed.json")
	res := exec.Command(bin, "resume", journal, "-quiet", "-format", "json", "-out", resReport)
	resOut, err := res.CombinedOutput()
	if err != nil {
		t.Fatalf("resume: %v\n%s", err, resOut)
	}
	if !strings.Contains(string(resOut), "resumed") {
		t.Fatalf("resume must report its reconstruction:\n%s", resOut)
	}
	if got, want := scenariosOf(t, resReport), scenariosOf(t, refReport); !bytes.Equal(got, want) {
		t.Fatalf("resumed aggregate diverged from uninterrupted run:\n got %s\nwant %s", got, want)
	}

	// status -json on the finished journal: complete, with a resume.
	stj := exec.Command(bin, "status", "-json", journal)
	stjOut, err := stj.Output()
	if err != nil {
		t.Fatalf("status -json after resume: %v", err)
	}
	var status struct {
		Complete bool `json:"complete"`
		Resumes  int  `json:"resumes"`
		Errors   int  `json:"errors"`
	}
	if err := json.Unmarshal(stjOut, &status); err != nil {
		t.Fatalf("status -json output: %v\n%s", err, stjOut)
	}
	if !status.Complete || status.Resumes != 1 || status.Errors != 0 {
		t.Fatalf("status after resume: %+v\n%s", status, stjOut)
	}
}

// -faults drives the injection harness from the CLI: a panicked cell
// fails the run with exit 1 and a per-kind summary on stderr.
func TestFaultInjectionFlagE2E(t *testing.T) {
	bin := binary(t)
	dir := t.TempDir()
	spec := writeSpec(t, dir, 2000)

	journal := filepath.Join(dir, "run.jsonl")
	var stderr bytes.Buffer
	cmd := exec.Command(bin, "run", "-spec", spec,
		"-journal", journal, "-workers", "2", "-quiet",
		"-faults", "cell.panic=1@1", "-fault-seed", "3")
	cmd.Stderr = &stderr
	err := cmd.Run()
	if code := exitCode(t, err); code != 1 {
		t.Fatalf("a failed cell must exit 1, got %d\n%s", code, stderr.String())
	}
	for _, want := range []string{"fault injection armed", "1 cells failed", "1 panic"} {
		if !strings.Contains(stderr.String(), want) {
			t.Fatalf("stderr missing %q:\n%s", want, stderr.String())
		}
	}

	// The journal records the typed failure with its stack.
	data := mustReadFile(journal)
	if !bytes.Contains(data, []byte(`"err_kind":"panic"`)) || !bytes.Contains(data, []byte("goroutine")) {
		t.Fatalf("journal must carry the typed panic and stack:\n%s", data)
	}

	// status surfaces the kind breakdown and exits nonzero.
	st := exec.Command(bin, "status", journal)
	stOut, err := st.CombinedOutput()
	if code := exitCode(t, err); code != 1 {
		t.Fatalf("status with failures must exit 1, got %d", code)
	}
	if !strings.Contains(string(stOut), "1 panic") {
		t.Fatalf("status missing kind breakdown:\n%s", stOut)
	}
}

func mustReadFile(path string) []byte {
	data, _ := os.ReadFile(path)
	return data
}

// Command mlcampaign executes declarative simulation campaigns: a
// JSON spec names the axes to sweep (benchmarks, mechanisms,
// hierarchy variants, memory models, host cores, prefetch-queue
// overrides, parameter sets, trace-selection policies, warm-up and
// measured budgets, seeds) and the engine runs the cross-product on
// a worker pool with a persistent result cache, then prints speedup
// grids, rankings and per-cell confidence intervals per scenario.
//
// Usage:
//
//	mlcampaign run -spec sweep.json -cache .mlcache -workers 8
//	mlcampaign run -spec sweep.json -format csv -out results.csv
//	mlcampaign run -spec examples/campaign/figures/fig8.json -cache .mlcache
//	mlcampaign plan -spec sweep.json
//	mlcampaign validate examples/campaign/*.json examples/campaign/figures/*.json
//	mlcampaign list
//	mlcampaign list -cache .mlcache
//	mlcampaign prune -cache .mlcache -older-than 720h
//	mlcampaign prune -cache .mlcache -spec sweep.json -dry-run
//	mlcampaign record -workload gzip -out gzip.mlt -insts 250000
//
// A campaign interrupted with ^C leaves every finished cell in the
// cache; rerunning the same spec with the same -cache directory
// resumes where it stopped (the scheduler counters report how many
// cells were served from the cache).
//
// Example spec (see examples/campaign/ for more):
//
//	{
//	  "name": "memory-models",
//	  "benchmarks": ["gzip", "mcf", "art", "twolf"],
//	  "mechanisms": ["Base", "SP", "GHB"],
//	  "memories": ["sdram", "const70"],
//	  "seeds": [42, 43]
//	}
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"microlib"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "plan":
		cmdPlan(os.Args[2:])
	case "validate":
		cmdValidate(os.Args[2:])
	case "list":
		cmdList(os.Args[2:])
	case "paths":
		cmdPaths(os.Args[2:])
	case "prune":
		cmdPrune(os.Args[2:])
	case "record":
		cmdRecord(os.Args[2:])
	case "resume":
		cmdResume(os.Args[2:])
	case "status":
		cmdStatus(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mlcampaign: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  mlcampaign run   -spec file [-cache dir] [-workers n] [-format text|csv|json] [-out file] [-quiet] [-set path=value]...
                   [-ckpt dir] [-nowarm] [-journal file.jsonl] [-http addr] [-interval cycles -interval-dir dir]
                   [-cell-timeout dur] [-retry n] [-retry-delay dur] [-stall-factor f]
                   [-faults spec] [-fault-seed n] [-fault-slow dur]
  mlcampaign resume file.jsonl [-cache dir] [-workers n] [-format text|csv|json] [-out file] [-quiet]
                   [-ckpt dir] [-nowarm] [-cell-timeout dur] [-retry n] [-retry-delay dur] [-stall-factor f]
  mlcampaign plan  -spec file [-diff] [-set path=value]...
  mlcampaign validate [-quiet] [-set path=value]... file.json [file2.json ...]
  mlcampaign list  [-cache dir]
  mlcampaign paths
  mlcampaign prune -cache dir [-older-than dur] [-spec file] [-dry-run]
  mlcampaign record -workload name -out file.mlt [-insts n] [-warmup n] [-seed n] [-skip n] [-selection simpoint|skip:N] [-spec file]
  mlcampaign status [-json] file.jsonl
`)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var sets microlib.SetFlags
	fs.Var(&sets, "set", "pin a config field for every cell, e.g. -set cpu.ruu=64 (repeatable)")
	var (
		specPath = fs.String("spec", "", "campaign spec file (JSON)")
		cacheDir = fs.String("cache", "", "persistent result cache directory (enables resume)")
		workers  = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		format   = fs.String("format", "text", "report format: text, csv, json")
		out      = fs.String("out", "", "write the report to a file instead of stdout")
		quiet    = fs.Bool("quiet", false, "suppress progress output")

		journal     = fs.String("journal", "", "append a JSONL run journal here (inspect with mlcampaign status, continue with mlcampaign resume)")
		httpAddr    = fs.String("http", "", "serve live metrics and pprof on this address while the campaign runs, e.g. :6060")
		interval    = fs.Uint64("interval", 0, "sample every simulated cell at this cycle granularity (needs -interval-dir)")
		intervalDir = fs.String("interval-dir", "", "write each sampled cell's series to this directory as <fingerprint>.json")
		ckptDir     = fs.String("ckpt", "", "persist warm-up prefix checkpoints in this directory so later campaigns sharing a prefix start warm")
		noWarm      = fs.Bool("nowarm", false, "disable warm-state checkpointing; every cell simulates its own skip and warm-up prefix")

		rob    = robustnessFlags(fs)
		faults = faultFlags(fs)
	)
	fs.Parse(args)
	if *specPath == "" {
		fatal(fmt.Errorf("run: -spec is required"))
	}
	if *format != "text" && *format != "csv" && *format != "json" {
		fatal(fmt.Errorf("run: unknown format %q", *format))
	}

	spec, err := microlib.LoadCampaignSpec(*specPath)
	if err != nil {
		fatal(err)
	}
	sets.Pin(&spec)

	if (*interval > 0) != (*intervalDir != "") {
		fatal(fmt.Errorf("run: -interval and -interval-dir go together"))
	}

	// ^C cancels the campaign; finished cells stay in the cache.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	live := &microlib.CampaignLiveStats{}
	cfg := microlib.CampaignConfig{
		Workers:       *workers,
		CacheDir:      *cacheDir,
		CheckpointDir: *ckptDir,
		NoWarm:        *noWarm,
		Live:          live,
		Interval:      *interval,
		IntervalDir:   *intervalDir,
	}
	rob.apply(&cfg)
	faults.apply(&cfg)
	if !*quiet {
		cfg.OnProgress = progressLine(live)
	}
	if *journal != "" {
		f, err := os.Create(*journal)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cfg.Journal = f
	}
	if *httpAddr != "" {
		m := microlib.NewMetrics()
		cfg.Metrics = m
		srv, err := microlib.ServeMetrics(*httpAddr, m)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "mlcampaign: live metrics on http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr())
	}

	sum, err := microlib.RunCampaign(ctx, spec, cfg)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	finishCampaign(sum, err, *format, *out, *journal)
}

// finishCampaign prints the campaign outcome (interruption notice or
// per-kind failure summary), emits the report, and exits nonzero for
// interrupted (130) or partly-failed (1) campaigns.
func finishCampaign(sum *microlib.CampaignSummary, err error, format, out, journal string) {
	if err != nil && sum == nil {
		fatal(err)
	}
	exit := 0
	if err != nil {
		resumeHint := "rerun with the same -cache to resume"
		if journal != "" {
			resumeHint = fmt.Sprintf("mlcampaign resume %s", journal)
		}
		fmt.Fprintf(os.Stderr, "mlcampaign: interrupted (%v); %d/%d cells done — %s\n",
			err, sum.Sched.Completed, sum.Sched.Total, resumeHint)
		exit = 130 // interrupted: partial report below, nonzero for scripts
	} else if sum.Sched.Errors > 0 {
		fmt.Fprintf(os.Stderr, "mlcampaign: %d cells failed (%s; see report)\n",
			sum.Sched.Errors, kindSummary(sum.Sched.FailedKinds))
		exit = 1
	}
	if sum.Sched.Degraded > 0 {
		fmt.Fprintf(os.Stderr, "mlcampaign: %d degraded operations (cache/journal trouble survived; see journal)\n", sum.Sched.Degraded)
	}

	var report []byte
	switch format {
	case "text":
		report = []byte(sum.Text())
	case "csv":
		report = []byte(sum.CSV())
	case "json":
		report, err = sum.JSON()
		if err != nil {
			fatal(err)
		}
		report = append(report, '\n')
	}
	if out != "" {
		if err := os.WriteFile(out, report, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mlcampaign: report written to %s\n", out)
	} else {
		os.Stdout.Write(report)
	}
	if exit != 0 {
		os.Exit(exit)
	}
}

// progressLine returns the interactive one-line progress callback:
// cell counter, result source, throughput, ETA.
func progressLine(live *microlib.CampaignLiveStats) func(microlib.CampaignProgress) {
	return func(p microlib.CampaignProgress) {
		src := "sim"
		if p.FromCache {
			src = "hit"
		}
		if p.Err != nil {
			src = "ERR"
		}
		// The live snapshot turns the counter into a forecast:
		// overall throughput and the extrapolated time to finish.
		s := live.Snapshot()
		eta := ""
		if s.ETA > 0 {
			eta = fmt.Sprintf(" eta %s", s.ETA.Round(time.Second))
		}
		fmt.Fprintf(os.Stderr, "\r[%d/%d] %s %s/%s seed=%d  %.1f cells/s%s        ",
			p.Done, p.Total, src, p.Cell.Bench(), p.Cell.Mech(), p.Cell.Seed(), s.CellsPerSec, eta)
	}
}

// kindSummary renders a per-error-kind count map as "2 panic, 1
// timeout".
func kindSummary(kinds map[string]int) string {
	if len(kinds) == 0 {
		return "unclassified"
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%d %s", kinds[k], k)
	}
	return strings.Join(parts, ", ")
}

// robustness is the fault-tolerance flag bundle shared by run and
// resume.
type robustness struct {
	cellTimeout *time.Duration
	retry       *int
	retryDelay  *time.Duration
	stallFactor *float64
}

func robustnessFlags(fs *flag.FlagSet) robustness {
	return robustness{
		cellTimeout: fs.Duration("cell-timeout", 0, "cancel any cell exceeding this wall time and record it as a timeout failure (0: spec's cell_timeout, then unlimited)"),
		retry:       fs.Int("retry", 1, "retries per transient cell failure (timeouts); deterministic failures never retry (0 disables)"),
		retryDelay:  fs.Duration("retry-delay", 200*time.Millisecond, "backoff before the first retry, doubling (capped) for later ones"),
		stallFactor: fs.Float64("stall-factor", 8, "warn when no cell finishes within this x the median cell wall time (0 disables the stall watchdog)"),
	}
}

func (r robustness) apply(cfg *microlib.CampaignConfig) {
	cfg.CellTimeout = *r.cellTimeout
	cfg.Retry = &microlib.CampaignRetryPolicy{Max: *r.retry, BaseDelay: *r.retryDelay}
	cfg.StallFactor = *r.stallFactor
	cfg.OnStall = func(rep microlib.CampaignStallReport) {
		fmt.Fprintf(os.Stderr, "\nmlcampaign: WARNING: no cell has finished for %s (threshold %s, %d/%d done) — campaign may be stalled\n",
			rep.Idle.Round(time.Second), rep.Threshold.Round(time.Second), rep.Done, rep.Total)
	}
}

// faultFlagVals is the fault-injection flag bundle (run only).
type faultFlagVals struct {
	spec *string
	seed *uint64
	slow *time.Duration
}

func faultFlags(fs *flag.FlagSet) faultFlagVals {
	return faultFlagVals{
		spec: fs.String("faults", "", "inject deterministic faults, e.g. cell.panic=0.2,cache.put.error=1@3 (chaos testing; see README failure semantics)"),
		seed: fs.Uint64("fault-seed", 1, "seed of the -faults schedule (same seed, same faults)"),
		slow: fs.Duration("fault-slow", 2*time.Second, "how long an injected cell.slow fault stalls its cell"),
	}
}

func (f faultFlagVals) apply(cfg *microlib.CampaignConfig) {
	if *f.spec == "" {
		return
	}
	inj, err := microlib.ParseFaultSpec(*f.spec, *f.seed)
	if err != nil {
		fatal(err)
	}
	inj.SlowFor = *f.slow
	cfg.Faults = inj
	fmt.Fprintf(os.Stderr, "mlcampaign: fault injection armed: %s (seed %d)\n", *f.spec, *f.seed)
}

// cmdResume continues a crashed or interrupted campaign from its
// journal: completed cells come from the cache, deterministic
// failures replay from the journal, only the remainder simulates.
func cmdResume(args []string) {
	fs := flag.NewFlagSet("resume", flag.ExitOnError)
	var (
		cacheDir = fs.String("cache", "", "result cache directory (default: the original run's)")
		workers  = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		format   = fs.String("format", "text", "report format: text, csv, json")
		out      = fs.String("out", "", "write the report to a file instead of stdout")
		quiet    = fs.Bool("quiet", false, "suppress progress output")
		ckptDir  = fs.String("ckpt", "", "persist warm-up prefix checkpoints in this directory so later campaigns sharing a prefix start warm")
		noWarm   = fs.Bool("nowarm", false, "disable warm-state checkpointing; every cell simulates its own skip and warm-up prefix")
		rob      = robustnessFlags(fs)
		faults   = faultFlags(fs)
	)
	// Accept both `resume file.jsonl -flags` and `resume -flags file.jsonl`.
	var journalPath string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		journalPath, args = args[0], args[1:]
	}
	fs.Parse(args)
	if journalPath == "" {
		if fs.NArg() != 1 {
			fatal(fmt.Errorf("resume: exactly one journal file expected"))
		}
		journalPath = fs.Arg(0)
	} else if fs.NArg() != 0 {
		fatal(fmt.Errorf("resume: exactly one journal file expected"))
	}
	if *format != "text" && *format != "csv" && *format != "json" {
		fatal(fmt.Errorf("resume: unknown format %q", *format))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	live := &microlib.CampaignLiveStats{}
	cfg := microlib.CampaignConfig{Workers: *workers, CacheDir: *cacheDir, CheckpointDir: *ckptDir, NoWarm: *noWarm, Live: live}
	rob.apply(&cfg)
	faults.apply(&cfg)
	if !*quiet {
		cfg.OnProgress = progressLine(live)
	}

	sum, info, err := microlib.ResumeCampaign(ctx, journalPath, cfg)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if sum == nil && err != nil {
		fatal(err)
	}
	note := ""
	if info.Torn {
		note = " (journal tail was torn mid-write; intact prefix used)"
	}
	fmt.Fprintf(os.Stderr, "mlcampaign: resumed%s: %d cells recovered (%d recorded failures), %d remained\n",
		note, info.Recovered, info.KnownFailures, info.Remaining)
	finishCampaign(sum, err, *format, *out, journalPath)
}

func cmdPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	var sets microlib.SetFlags
	fs.Var(&sets, "set", "pin a config field for every cell (repeatable)")
	specPath := fs.String("spec", "", "campaign spec file (JSON)")
	diff := fs.Bool("diff", false, "print each cell as its deviation from the plan's base point, with its warm-up prefix group")
	fs.Parse(args)
	if *specPath == "" {
		fatal(fmt.Errorf("plan: -spec is required"))
	}
	spec, err := microlib.LoadCampaignSpec(*specPath)
	if err != nil {
		fatal(err)
	}
	sets.Pin(&spec)
	plan, err := microlib.NewCampaignPlan(spec)
	if err != nil {
		fatal(err)
	}
	if *diff {
		printPlanDiff(plan)
		return
	}
	printPlan(plan)
}

// printPlanDiff renders the plan as deviations from its base point:
// the first value of every axis is the default, and each cell lists
// only the axis values it changes. The prefix column names the cell's
// warm-up prefix group (cells differing only in measured budget share
// a group and pay for one prefix simulation between them), so the
// sharing structure warm-state checkpointing exploits is visible
// before any cell runs.
func printPlanDiff(plan *microlib.CampaignPlan) {
	fmt.Printf("campaign %q: %d cells, fingerprint %s\n", plan.Spec.Name, len(plan.Cells), plan.Fingerprint())
	base := make(map[string]string, len(plan.Axes))
	baseParts := make([]string, 0, len(plan.Axes))
	for _, ax := range plan.Axes {
		if len(ax.Values) == 0 {
			continue
		}
		base[ax.Name] = ax.Values[0]
		baseParts = append(baseParts, ax.Name+"="+ax.Values[0])
	}
	fmt.Printf("base: %s\n", strings.Join(baseParts, " "))

	type row struct {
		idx    int
		prefix string
		diff   string
		key    string
	}
	groups := make(map[string]string)
	rows := make([]row, 0, len(plan.Cells))
	diffW, prefW := len("diff"), len("prefix")
	for _, c := range plan.Cells {
		var devs []string
		for _, v := range c.Values {
			if v.Value != base[v.Axis] {
				devs = append(devs, v.Axis+"="+v.Value)
			}
		}
		d := "(base)"
		if len(devs) > 0 {
			d = strings.Join(devs, " ")
		}
		pfp := c.Opts.PrefixFingerprint()
		label, ok := groups[pfp]
		if !ok {
			label = fmt.Sprintf("p%d %s", len(groups), pfp[:8])
			groups[pfp] = label
		}
		if len(d) > diffW {
			diffW = len(d)
		}
		if len(label) > prefW {
			prefW = len(label)
		}
		rows = append(rows, row{c.Index, label, d, c.Key})
	}
	fmt.Printf("%d warm-up prefix groups over %d cells\n", len(groups), len(plan.Cells))
	fmt.Printf("%-5s %-*s %-*s  key\n", "idx", prefW, "prefix", diffW, "diff")
	for _, r := range rows {
		fmt.Printf("%-5d %-*s %-*s  %s\n", r.idx, prefW, r.prefix, diffW, r.diff, r.key)
	}
}

// printPlan renders a plan: the axis table, the scenarios, and one
// row per cell with a column for every axis.
func printPlan(plan *microlib.CampaignPlan) {
	fmt.Printf("campaign %q: %d cells, fingerprint %s\n", plan.Spec.Name, len(plan.Cells), plan.Fingerprint())
	for _, ax := range plan.Axes {
		kind := "scenario axis"
		if !ax.Scenario {
			kind = "axis"
		}
		fmt.Printf("%-13s %-7s %s\n", kind, ax.Name, strings.Join(ax.Values, " "))
	}
	for _, sc := range plan.Scenarios() {
		fmt.Printf("scenario %s\n", sc)
	}

	// Column widths follow the widest value of each axis.
	widths := make([]int, len(plan.Axes))
	for i, ax := range plan.Axes {
		widths[i] = len(ax.Name)
		for _, v := range ax.Values {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	fmt.Printf("%-5s", "idx")
	for i, ax := range plan.Axes {
		fmt.Printf(" %-*s", widths[i], ax.Name)
	}
	fmt.Println("  key")
	for _, c := range plan.Cells {
		fmt.Printf("%-5d", c.Index)
		for i, v := range c.Values {
			fmt.Printf(" %-*s", widths[i], v.Value)
		}
		fmt.Printf("  %s\n", c.Key)
	}
}

// cmdValidate parses, normalizes and plans every given spec file
// without executing any cell — the CI gate that keeps shipped specs
// from rotting. SimPoint selections are resolved (that is plan-time
// analysis, not simulation), so a spec that cannot expand fails here.
func cmdValidate(args []string) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	var sets microlib.SetFlags
	fs.Var(&sets, "set", "pin a config field for every cell (repeatable)")
	quiet := fs.Bool("quiet", false, "print failures only")
	fs.Parse(args)
	files := fs.Args()
	if len(files) == 0 {
		fatal(fmt.Errorf("validate: no spec files given"))
	}
	bad := 0
	for _, f := range files {
		spec, err := microlib.LoadCampaignSpec(f)
		if err == nil {
			sets.Pin(&spec)
		}
		var plan *microlib.CampaignPlan
		if err == nil {
			plan, err = microlib.NewCampaignPlan(spec)
		}
		if err != nil {
			bad++
			fmt.Printf("FAIL %s: %v\n", f, err)
			continue
		}
		if !*quiet {
			fmt.Printf("ok   %s: campaign %q, %d cells, %d scenarios, plan %s\n",
				f, plan.Spec.Name, len(plan.Cells), len(plan.Scenarios()), plan.Fingerprint())
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "mlcampaign: %d of %d specs failed validation\n", bad, len(files))
		os.Exit(1)
	}
}

func cmdList(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	cacheDir := fs.String("cache", "", "list this cache directory instead of the axis values")
	fs.Parse(args)

	if *cacheDir == "" {
		fmt.Println("benchmarks: ", strings.Join(microlib.Benchmarks(), " "))
		fmt.Println("mechanisms: ", microlib.BaseMechanism, strings.Join(microlib.Mechanisms(), " "))
		fmt.Println("hiers:      ", strings.Join(microlib.CampaignHiers(), " "))
		fmt.Println("memories:   ", strings.Join(microlib.CampaignMemories(), " "))
		fmt.Println("cores:      ", strings.Join(microlib.CampaignCores(), " "))
		fmt.Println("selections: ", strings.Join(microlib.CampaignSelections(), " "), "(or skip:N)")
		return
	}
	// Inspect only: a mistyped path must fail, not be created.
	if info, err := os.Stat(*cacheDir); err != nil || !info.IsDir() {
		fatal(fmt.Errorf("list: %s is not a cache directory", *cacheDir))
	}
	cache, err := microlib.OpenCampaignCache(*cacheDir)
	if err != nil {
		fatal(err)
	}
	keys, err := cache.Keys()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d cached cells in %s\n", len(keys), *cacheDir)
	for _, k := range keys {
		if res, ok := cache.Get(k); ok {
			fmt.Printf("%s  %-10s %-8s seed=%-4d IPC=%.4f\n", k, res.Bench, res.Mechanism, res.Seed, res.IPC)
		} else {
			fmt.Printf("%s  (corrupt entry; will be resimulated)\n", k)
		}
	}
}

// cmdPaths prints the config-field registry: every dotted path a
// "fields" axis, a "set" section or a -set flag can address, with its
// type, Table 1 default and description. This is the generated
// namespace table the README refers to.
func cmdPaths(args []string) {
	fs := flag.NewFlagSet("paths", flag.ExitOnError)
	fs.Parse(args)
	defaults := microlib.NewOptions("", microlib.BaseMechanism)
	fmt.Printf("%-28s %-5s %-13s %s\n", "path", "kind", "default", "description")
	for _, f := range microlib.ConfigFields() {
		def, err := microlib.GetOptionField(&defaults, f.Path)
		if err != nil {
			fatal(err)
		}
		doc := f.Doc
		if len(f.Enum) > 0 {
			doc += " (one of: " + strings.Join(f.Enum, ", ") + ")"
		}
		fmt.Printf("%-28s %-5s %-13s %s\n", f.Path, f.Kind, def, doc)
	}
}

// cmdPrune garbage-collects a result cache: cells older than
// -older-than, or — when -spec is given — cells not reachable from
// that spec's plan fingerprints, are deleted.
func cmdPrune(args []string) {
	fs := flag.NewFlagSet("prune", flag.ExitOnError)
	var (
		cacheDir  = fs.String("cache", "", "result cache directory to prune")
		olderThan = fs.Duration("older-than", 0, "delete cells older than this (e.g. 720h)")
		specPath  = fs.String("spec", "", "keep only cells reachable from this spec's plan")
		dryRun    = fs.Bool("dry-run", false, "report what would be deleted without deleting")
	)
	fs.Parse(args)
	if *cacheDir == "" {
		fatal(fmt.Errorf("prune: -cache is required"))
	}
	if *olderThan == 0 && *specPath == "" {
		fatal(fmt.Errorf("prune: need -older-than and/or -spec to select cells"))
	}
	// Inspect only: a mistyped path must fail, not be created.
	if info, err := os.Stat(*cacheDir); err != nil || !info.IsDir() {
		fatal(fmt.Errorf("prune: %s is not a cache directory", *cacheDir))
	}
	cache, err := microlib.OpenCampaignCache(*cacheDir)
	if err != nil {
		fatal(err)
	}
	opts := microlib.CampaignPruneOptions{OlderThan: *olderThan, DryRun: *dryRun}
	if *specPath != "" {
		spec, err := microlib.LoadCampaignSpec(*specPath)
		if err != nil {
			fatal(err)
		}
		plan, err := microlib.NewCampaignPlan(spec)
		if err != nil {
			fatal(err)
		}
		opts.Keep = plan
	}
	res, err := microlib.PruneCampaignCache(cache, opts)
	if err != nil {
		fatal(err)
	}
	verb := "removed"
	if *dryRun {
		verb = "would remove"
	}
	for _, e := range res.Removed {
		fmt.Printf("%s %s (%s, %d bytes)\n", verb, e.Key, e.ModTime.Format("2006-01-02 15:04:05"), e.Size)
	}
	fmt.Printf("mlcampaign: %s %d cells (%d bytes), kept %d\n", verb, len(res.Removed), res.Bytes, res.Kept)
}

// cmdRecord captures a workload — a built-in benchmark, or any
// custom workload of a spec — to a binary trace file, which another
// spec can then replay through a "trace" workload entry. A window
// (-skip, or -selection simpoint/skip:N) records a chosen execution
// region instead of the stream prefix; replaying it is bit-identical
// to a live run skipped to the same offset.
func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		name     = fs.String("workload", "", "workload to record: a built-in benchmark or, with -spec, a spec-defined workload")
		out      = fs.String("out", "", "trace file to write")
		insts    = fs.Uint64("insts", 250_000, "measured instruction budget of the runs the trace will feed")
		warmup   = fs.Uint64("warmup", 0, "their warm-up budget: widens the recording to warmup+insts and the simpoint analysis to match a campaign cell")
		seed     = fs.Uint64("seed", 42, "generator seed (ignored for trace-backed workloads)")
		skip     = fs.Uint64("skip", 0, "instructions to discard before the recorded window")
		sel      = fs.String("selection", "", "resolve the window offset by policy: simpoint, skip:N")
		specPath = fs.String("spec", "", "campaign spec defining custom workloads (optional)")
	)
	fs.Parse(args)
	if *name == "" || *out == "" {
		fatal(fmt.Errorf("record: -workload and -out are required"))
	}

	var spec microlib.CampaignSpec
	if *specPath != "" {
		s, err := microlib.LoadCampaignSpec(*specPath)
		if err != nil {
			fatal(err)
		}
		spec = s
	}

	// Record into a temp file and rename on success: -out may name an
	// existing trace — including the very trace being re-recorded
	// from — and neither a failed run nor the recording itself may
	// clobber it before the new content is complete.
	tmp := *out + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		fatal(err)
	}
	ropts := microlib.TraceRecordOptions{Seed: *seed, Insts: *insts, Warmup: *warmup, Skip: *skip, Selection: *sel}
	n, rerr := microlib.RecordTraceWindow(spec, *name, ropts, f)
	if cerr := f.Close(); rerr == nil {
		rerr = cerr
	}
	if rerr == nil {
		rerr = os.Rename(tmp, *out)
	}
	if rerr != nil {
		os.Remove(tmp)
		fatal(rerr)
	}
	fmt.Printf("recorded %d instructions of %s to %s\n", n, *name, *out)
}

// cmdStatus digests a run journal written by `run -journal`: overall
// state (completed, aborted, or cut off mid-run), cache hit rate,
// throughput, the slowest cells and any failures.
func cmdStatus(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the digest as JSON (for CI gates asserting on failure kinds)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("status: exactly one journal file expected"))
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	evs, err := microlib.ReadCampaignJournal(f)
	var torn *microlib.TornTailError
	if errors.As(err, &torn) {
		// A torn final line is crash debris, not corruption; status
		// exists to diagnose exactly such journals.
		err = nil
	}
	if err != nil {
		fatal(err)
	}
	st, err := microlib.SummarizeCampaignJournal(evs)
	if err != nil {
		fatal(err)
	}
	st.Torn = torn != nil
	if *asJSON {
		data, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		os.Stdout.WriteString(st.Text())
	}
	if !st.Complete || st.Aborted || st.Errors > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlcampaign:", err)
	os.Exit(1)
}

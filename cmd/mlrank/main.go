// Command mlrank regenerates the paper's tables and figures: every
// data-driven figure is a thin formatter over its shipped campaign
// spec (examples/campaign/figures), executed through the campaign
// scheduler and cell cache, and this command prints the report
// tables. This is the "regularly updated comparison (ranking)" the
// MicroLib project maintains.
//
// Usage:
//
//	mlrank -exp fig4
//	mlrank -exp all -scale 2 -cache .mlcache
//	mlrank -exp fig8 -set cpu.ruu=32 -set cpu.lsq=32
//	mlrank -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"microlib"
)

func main() {
	var sets microlib.SetFlags
	flag.Var(&sets, "set", "pin a config field for every figure cell, e.g. -set cpu.ruu=64 (repeatable; mlcampaign paths lists them)")
	var (
		exp      = flag.String("exp", "fig4", "experiment id, or 'all'")
		list     = flag.Bool("list", false, "list experiment ids")
		scale    = flag.Uint64("scale", 1, "divide instruction budgets by this factor")
		parallel = flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
		insts    = flag.Uint64("insts", 0, "override measured instructions per run")
		warmup   = flag.Uint64("warmup", 0, "override warm-up instructions per run")
		cacheDir = flag.String("cache", "", "persistent cell cache directory (shared with mlcampaign)")
	)
	flag.Parse()

	if *list {
		for _, id := range microlib.Experiments() {
			fmt.Println(id)
		}
		return
	}

	r := microlib.NewExperiments()
	r.SetFields = sets.Map()
	r.Scale(*scale)
	if *parallel > 0 {
		r.Parallel = *parallel
	}
	if *insts > 0 {
		r.Insts = *insts
	}
	if *warmup > 0 {
		r.Warmup = *warmup
	}
	if *cacheDir != "" {
		// Open it once up front so a mistyped or unwritable path is a
		// clean CLI error, not a panic mid-experiment.
		if _, err := microlib.OpenCampaignCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "mlrank:", err)
			os.Exit(1)
		}
		r.CacheDir = *cacheDir
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = microlib.Experiments()
	}
	// Pre-flight -set against the grids of exactly these experiments:
	// a conflict with a spec's own swept fields must fail now, not
	// after hours of earlier figures — and must not block experiments
	// that never touch the conflicting grid.
	if err := r.CheckSetFields(ids...); err != nil {
		fmt.Fprintln(os.Stderr, "mlrank:", err)
		os.Exit(1)
	}
	for _, id := range ids {
		if id == "genref" && *exp == "all" {
			continue // only on explicit request
		}
		rep, err := microlib.RunExperiment(r, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlrank:", err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		fmt.Println(strings.Repeat("-", 72))
	}
}

// Command mlrank regenerates the paper's tables and figures: it runs
// the experiment drivers (Figures 1-11, Tables 1-7) and prints their
// report tables. This is the "regularly updated comparison (ranking)"
// the MicroLib project maintains.
//
// Usage:
//
//	mlrank -exp fig4
//	mlrank -exp all -scale 2
//	mlrank -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"microlib"
)

func main() {
	var (
		exp      = flag.String("exp", "fig4", "experiment id, or 'all'")
		list     = flag.Bool("list", false, "list experiment ids")
		scale    = flag.Uint64("scale", 1, "divide instruction budgets by this factor")
		parallel = flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
		insts    = flag.Uint64("insts", 0, "override measured instructions per run")
		warmup   = flag.Uint64("warmup", 0, "override warm-up instructions per run")
	)
	flag.Parse()

	if *list {
		for _, id := range microlib.Experiments() {
			fmt.Println(id)
		}
		return
	}

	r := microlib.NewExperiments()
	r.Scale(*scale)
	if *parallel > 0 {
		r.Parallel = *parallel
	}
	if *insts > 0 {
		r.Insts = *insts
	}
	if *warmup > 0 {
		r.Warmup = *warmup
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = microlib.Experiments()
	}
	for _, id := range ids {
		if id == "genref" && *exp == "all" {
			continue // only on explicit request
		}
		rep, err := microlib.RunExperiment(r, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlrank:", err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		fmt.Println(strings.Repeat("-", 72))
	}
}

// Command mltrace works with MicroLib instruction traces: it can
// dump a benchmark's synthetic stream to the binary trace format,
// inspect a trace file, and run SimPoint analysis on a benchmark
// (showing the interval clustering and the selected SimPoint).
//
// Usage:
//
//	mltrace -bench gzip -dump gzip.mlt -insts 100000
//	mltrace -inspect gzip.mlt -head 10
//	mltrace -bench gzip -simpoint
package main

import (
	"flag"
	"fmt"
	"os"

	"microlib/internal/simpoint"
	"microlib/internal/trace"
	"microlib/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "gzip", "benchmark name")
		seed     = flag.Uint64("seed", 42, "generator seed")
		insts    = flag.Uint64("insts", 100_000, "instructions to dump/analyze")
		dump     = flag.String("dump", "", "write the stream to this trace file")
		inspect  = flag.String("inspect", "", "print statistics of a trace file")
		head     = flag.Int("head", 0, "with -inspect, print the first N records")
		simPoint = flag.Bool("simpoint", false, "run SimPoint analysis on the benchmark")
	)
	flag.Parse()

	switch {
	case *inspect != "":
		if err := inspectTrace(*inspect, *head); err != nil {
			fmt.Fprintln(os.Stderr, "mltrace:", err)
			os.Exit(1)
		}
	case *dump != "":
		if err := dumpTrace(*bench, *seed, *insts, *dump); err != nil {
			fmt.Fprintln(os.Stderr, "mltrace:", err)
			os.Exit(1)
		}
	case *simPoint:
		if err := analyze(*bench, *seed, *insts); err != nil {
			fmt.Fprintln(os.Stderr, "mltrace:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func dumpTrace(bench string, seed, insts uint64, path string) error {
	gen, err := workload.New(bench, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	var inst trace.Inst
	for i := uint64(0); i < insts && gen.Next(&inst); i++ {
		if err := w.Write(&inst); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d instructions of %s to %s\n", w.Count(), bench, path)
	return nil
}

func inspectTrace(path string, head int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var (
		inst   trace.Inst
		n      uint64
		counts [16]uint64
		bbs    = map[uint32]struct{}{}
	)
	for r.Next(&inst) {
		if head > 0 && n < uint64(head) {
			fmt.Printf("%6d pc=%#x class=%-6s addr=%#x dep1=%d bb=%d\n",
				n, inst.PC, inst.Class, inst.Addr, inst.Dep1, inst.BB)
		}
		counts[inst.Class]++
		bbs[inst.BB] = struct{}{}
		n++
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("%d instructions, %d basic blocks\n", n, len(bbs))
	for c := trace.IntALU; c <= trace.Branch; c++ {
		if counts[c] > 0 {
			fmt.Printf("  %-6s %10d (%5.2f%%)\n", c, counts[c], float64(counts[c])/float64(n)*100)
		}
	}
	return nil
}

func analyze(bench string, seed, insts uint64) error {
	gen, err := workload.New(bench, seed)
	if err != nil {
		return err
	}
	cfg := simpoint.DefaultConfig()
	if insts > 0 {
		cfg.IntervalLen = insts / uint64(cfg.Intervals)
		if cfg.IntervalLen == 0 {
			cfg.IntervalLen = 1
		}
	}
	res := simpoint.Analyze(gen, cfg)
	fmt.Printf("benchmark %s: k=%d clusters over %d intervals of %d insts\n",
		bench, res.K, len(res.Labels), cfg.IntervalLen)
	fmt.Print("labels: ")
	for _, l := range res.Labels {
		fmt.Printf("%d ", l)
	}
	fmt.Println()
	fmt.Printf("simpoint: interval %d (skip %d instructions)\n", res.Point, res.SkipInsts)
	return nil
}

// Command mlbench runs the kernel microbenchmarks and one end-to-end
// artifact benchmark, writes the results as JSON (BENCH_10.json in CI)
// and enforces two contracts: steady-state Engine.After + Drain
// scheduling must perform zero allocations per event, and a
// shared-prefix campaign sweep must run at least 2x faster warm
// (prefix checkpointing on) than cold — or the command exits nonzero.
//
// Every row records wall-clock time and iteration count alongside the
// allocation counters, and the simulator-throughput rows carry
// insts_per_sec — including a sampled variant that prices the
// telemetry interval sampler against the unsampled run. The slab
// promotion rows price the overflow heap's batch-promotion path
// against the one-pop-at-a-time baseline on the identical workload,
// and the campaign/shared-prefix pair prices warm-state checkpointing
// against cold execution of the same plan.
//
// Usage:
//
//	mlbench [-out BENCH_10.json] [-scale 4] [-artifact fig8] [-skip-artifact]
//
// The JSON also carries the recorded seed-kernel baseline (the
// container/heap engine with per-cycle stepping, measured on the
// reference machine before the calendar-queue rewrite) so the
// end-to-end speedup of the rewrite stays visible in the artifact.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"microlib/internal/campaign"
	"microlib/internal/cpu"
	"microlib/internal/experiments"
	"microlib/internal/hier"
	"microlib/internal/runner"
	"microlib/internal/sim"
	"microlib/internal/telemetry"
	"microlib/internal/workload"
)

// seedBaseline records the pre-rewrite kernel on the reference
// machine (Intel Xeon @ 2.10GHz, linux/amd64, MICROLIB_SCALE=4).
// Speedup ratios in the report are only meaningful on comparable
// hardware; the allocation gate is machine-independent.
var seedBaseline = map[string]Result{
	"kernel/after-drain":   {Name: "kernel/after-drain", NsPerOp: 142.1, AllocsPerOp: 3, BytesPerOp: 64},
	"sim-throughput":       {Name: "sim-throughput", NsPerOp: 58764333, AllocsPerOp: 665500, BytesPerOp: 21000736, Extra: map[string]float64{"insts_per_sec": 1021029}},
	"artifact/fig8/scale4": {Name: "artifact/fig8/scale4", NsPerOp: 48488197464},
}

// Result is one benchmark row.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// N and WallS record how much work the row actually measured:
	// iterations chosen by the harness and total wall-clock seconds.
	N     int                `json:"n,omitempty"`
	WallS float64            `json:"wall_s,omitempty"`
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the BENCH_10.json document.
type Report struct {
	GoVersion    string             `json:"go_version"`
	GOOS         string             `json:"goos"`
	GOARCH       string             `json:"goarch"`
	Scale        uint64             `json:"scale"`
	Results      []Result           `json:"results"`
	SeedBaseline map[string]Result  `json:"seed_baseline"`
	Speedup      map[string]float64 `json:"speedup_vs_seed,omitempty"`
	AllocGate    string             `json:"alloc_gate"`
	WarmGate     string             `json:"warm_gate"`
	RetryGate    string             `json:"retry_gate"`
}

func bench(name string, f func(b *testing.B)) Result {
	r := testing.Benchmark(f)
	return Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		N:           r.N,
		WallS:       r.T.Seconds(),
	}
}

func main() {
	var (
		out          = flag.String("out", "BENCH_10.json", "output JSON path")
		scale        = flag.Uint64("scale", 4, "artifact bench scale divisor (MICROLIB_SCALE)")
		artifact     = flag.String("artifact", "fig8", "artifact experiment id for the end-to-end bench")
		skipArtifact = flag.Bool("skip-artifact", false, "skip the (slow) artifact bench")
	)
	flag.Parse()

	rep := Report{
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		Scale:        *scale,
		SeedBaseline: seedBaseline,
		Speedup:      map[string]float64{},
	}

	// Kernel microbenchmarks: the two steady-state scheduling paths,
	// running the same canonical workload the sim and root-package
	// benchmarks measure (sim.RunSteadyState), so the gated workload
	// cannot drift from the documented one.
	kernelClosure := bench("kernel/after-drain", func(b *testing.B) {
		eng := sim.NewEngine()
		b.ResetTimer()
		sim.RunSteadyState(eng, b.N, false)
	})
	kernelPooled := bench("kernel/afterfunc-drain", func(b *testing.B) {
		eng := sim.NewEngine()
		b.ResetTimer()
		sim.RunSteadyState(eng, b.N, true)
	})
	rep.Results = append(rep.Results, kernelClosure, kernelPooled)

	// Overflow slab promotion: a window jump carries a whole slab of
	// far-future events into the ring at once (skip phases, warm-state
	// restores). The popwise row runs the identical workload with the
	// batch path disabled, so their ratio is the ns/op delta of the
	// batch-promotion optimization itself.
	const slab = 4096
	slabBatch := bench("kernel/slab-promotion", func(b *testing.B) {
		eng := sim.NewEngine()
		sim.RunSlabPromotion(eng, slab, false)
		b.ResetTimer()
		var fired uint64
		for i := 0; i < b.N; i++ {
			fired += sim.RunSlabPromotion(eng, slab, false)
		}
		if fired == 0 {
			b.Fatal("no events ran")
		}
	})
	slabPopwise := bench("kernel/slab-promotion/popwise", func(b *testing.B) {
		eng := sim.NewEngine()
		sim.RunSlabPromotion(eng, slab, true)
		b.ResetTimer()
		var fired uint64
		for i := 0; i < b.N; i++ {
			fired += sim.RunSlabPromotion(eng, slab, true)
		}
		if fired == 0 {
			b.Fatal("no events ran")
		}
	})
	slabBatch.Extra = map[string]float64{
		"events_per_op":      slab,
		"speedup_vs_popwise": slabPopwise.NsPerOp / slabBatch.NsPerOp,
		"delta_ns_per_op":    slabPopwise.NsPerOp - slabBatch.NsPerOp,
		"delta_ns_per_event": (slabPopwise.NsPerOp - slabBatch.NsPerOp) / slab,
	}
	rep.Results = append(rep.Results, slabBatch, slabPopwise)

	// Stall-heavy core rows: a tiny single-port, single-MSHR L1D makes
	// the cores absorb a refusal on most submits, which is exactly the
	// regime the structured refusal hints target — a refused submit
	// jumps straight to the hinted retry cycle instead of re-probing
	// the cache every cycle. The /step rows run the identical machine
	// with cycle-stepping retries forced back on (SetStepRetries), so
	// each pair's ratio is the payoff of the hints alone. Results are
	// bit-identical between the paired modes; only the probe count
	// differs. Incremental chunks keep the warmed machine (and its
	// in-flight state) across iterations.
	const stallChunk = 5_000
	stallHier := func() hier.Config {
		cfg := hier.DefaultConfig()
		cfg.L1D.Size = 1 << 10
		cfg.L1D.Assoc = 1
		cfg.L1D.Ports = 1
		cfg.L1D.MSHRs = 1
		cfg.L1D.ReadsPerMSHR = 1
		return cfg
	}
	// Store-dominated random traffic over a region far beyond L2: a
	// store miss holds the single MSHR for a full memory round trip,
	// so the next submit is refused for that whole span. Built-in
	// profiles top out near 0.13 store fraction — too light to keep
	// the MSHR pinned.
	stallProfile := workload.Profile{
		Name:      "stall-heavy",
		LoadFrac:  0.10,
		StoreFrac: 0.50,
		BlockLen:  12,
		CodeKB:    4,
		Patterns:  []workload.PatternSpec{{Kind: workload.PatRand, Size: 8 << 20}},
		Phases:    []workload.PhaseSpec{{Len: 100_000, Weights: []float64{1}}},
	}
	stallInOrder := func(step bool) func(b *testing.B) {
		return func(b *testing.B) {
			eng := sim.NewEngine()
			h := hier.Build(eng, stallHier())
			c := cpu.NewInOrder(eng, h, workload.NewGenerator(stallProfile, 1))
			c.SetStepRetries(step)
			total := uint64(stallChunk)
			c.Run(total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total += stallChunk
				c.Run(total)
			}
		}
	}
	stallOoO := func(step bool) func(b *testing.B) {
		return func(b *testing.B) {
			eng := sim.NewEngine()
			h := hier.Build(eng, stallHier())
			o := cpu.NewOoO(eng, cpu.DefaultConfig(), h, workload.NewGenerator(stallProfile, 1))
			o.SetStepRetries(step)
			total := uint64(stallChunk)
			o.SetStop(total)
			o.Run(math.MaxUint64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total += stallChunk
				o.SetStop(total)
				o.Run(math.MaxUint64)
			}
		}
	}
	stallIO := bench("core/stall-heavy/inorder", stallInOrder(false))
	stallIOStep := bench("core/stall-heavy/inorder/step", stallInOrder(true))
	stallO3 := bench("core/stall-heavy/ooo", stallOoO(false))
	stallO3Step := bench("core/stall-heavy/ooo/step", stallOoO(true))
	retrySpeedupIO := stallIOStep.NsPerOp / stallIO.NsPerOp
	retrySpeedupO3 := stallO3Step.NsPerOp / stallO3.NsPerOp
	stallIO.Extra = map[string]float64{
		"insts_per_op":    stallChunk,
		"speedup_vs_step": retrySpeedupIO,
		"insts_per_sec":   stallChunk / (stallIO.NsPerOp * 1e-9),
	}
	stallO3.Extra = map[string]float64{
		"insts_per_op":    stallChunk,
		"speedup_vs_step": retrySpeedupO3,
		"insts_per_sec":   stallChunk / (stallO3.NsPerOp * 1e-9),
	}
	rep.Results = append(rep.Results, stallIO, stallIOStep, stallO3, stallO3Step)

	// End-to-end simulator throughput (memory-bound bench + prefetch
	// mechanism exercises the whole event path).
	simThroughput := bench("sim-throughput", func(b *testing.B) {
		opts := runner.DefaultOptions("swim", "GHB")
		opts.Insts = 50_000
		opts.Warmup = 10_000
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := runner.Run(opts); err != nil {
				fatal(err)
			}
		}
	})
	// Each op simulates 60k instructions (10k warm-up + 50k measured).
	simThroughput.Extra = map[string]float64{
		"insts_per_sec": 60_000 / (simThroughput.NsPerOp * 1e-9),
	}
	rep.Results = append(rep.Results, simThroughput)

	// The same run with the interval sampler on: the telemetry
	// overhead row. sampled/unsampled insts_per_sec is the price of
	// time-resolved counters (the sampler is pull-based, so it should
	// be within noise of 1.0).
	simSampled := bench("sim-throughput/interval1000", func(b *testing.B) {
		opts := runner.DefaultOptions("swim", "GHB")
		opts.Insts = 50_000
		opts.Warmup = 10_000
		opts.Interval = 1000
		opts.IntervalSink = func(telemetry.Interval) {}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := runner.Run(opts); err != nil {
				fatal(err)
			}
		}
	})
	simSampled.Extra = map[string]float64{
		"insts_per_sec":         60_000 / (simSampled.NsPerOp * 1e-9),
		"overhead_vs_unsampled": simSampled.NsPerOp / simThroughput.NsPerOp,
	}
	rep.Results = append(rep.Results, simSampled)

	// Shared-prefix sweep, cold vs warm: a geometry-style budget sweep
	// around one base point — eight measured budgets over the same
	// (workload, seed, skip, warm-up, machine) prefix. Cold execution
	// re-simulates the 50k-instruction prefix for every cell; warm
	// execution pays for it once and forks the measurement phase from
	// the checkpoint. One worker, so the ratio is pure prefix
	// amortization, not parallelism. The warm gate below requires
	// warm_speedup >= 2.
	sweep := campaign.Spec{
		Name:       "mlbench-shared-prefix",
		Benchmarks: []string{"swim"},
		Mechanisms: []string{"GHB"},
		Seeds:      []uint64{1},
		Insts:      []uint64{2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000},
	}
	warmup := uint64(50_000)
	sweep.Warmup = &warmup
	runSweep := func(noWarm bool) {
		sum, err := campaign.Execute(context.Background(), sweep, campaign.RunConfig{Workers: 1, NoWarm: noWarm})
		if err != nil {
			fatal(err)
		}
		if sum.Sched.Errors > 0 {
			fatal(fmt.Errorf("shared-prefix sweep: %d cells failed", sum.Sched.Errors))
		}
	}
	sweepCold := bench("campaign/shared-prefix/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSweep(true)
		}
	})
	sweepWarm := bench("campaign/shared-prefix/warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSweep(false)
		}
	})
	warmSpeedup := sweepCold.NsPerOp / sweepWarm.NsPerOp
	sweepWarm.Extra = map[string]float64{"warm_speedup": warmSpeedup}
	rep.Results = append(rep.Results, sweepCold, sweepWarm)

	// One full artifact experiment, end to end.
	if !*skipArtifact {
		r := experiments.Default().Scale(*scale)
		start := time.Now()
		if _, err := experiments.Run(r, *artifact); err != nil {
			fatal(err)
		}
		rep.Results = append(rep.Results, Result{
			Name:    fmt.Sprintf("artifact/%s/scale%d", *artifact, *scale),
			NsPerOp: float64(time.Since(start).Nanoseconds()),
		})
	}

	for _, res := range rep.Results {
		if base, ok := seedBaseline[res.Name]; ok && res.NsPerOp > 0 {
			rep.Speedup[res.Name] = base.NsPerOp / res.NsPerOp
		}
	}

	// The allocation gate: zero steady-state allocations per
	// scheduled event on both kernel paths.
	gateFailed := kernelClosure.AllocsPerOp > 0 || kernelPooled.AllocsPerOp > 0
	if gateFailed {
		rep.AllocGate = fmt.Sprintf("FAIL: after-drain=%d allocs/op, afterfunc-drain=%d allocs/op (want 0)",
			kernelClosure.AllocsPerOp, kernelPooled.AllocsPerOp)
	} else {
		rep.AllocGate = "PASS: 0 allocs/op on both kernel scheduling paths"
	}

	// The warm gate: prefix checkpointing must at least halve the
	// wall-clock of the shared-prefix sweep.
	warmFailed := warmSpeedup < 2
	if warmFailed {
		rep.WarmGate = fmt.Sprintf("FAIL: shared-prefix sweep warm speedup %.2fx (want >= 2x)", warmSpeedup)
	} else {
		rep.WarmGate = fmt.Sprintf("PASS: shared-prefix sweep runs %.1fx faster warm than cold", warmSpeedup)
	}

	// The retry gate: refusal hints must make the stall-heavy InOrder
	// row at least 1.5x faster than forced cycle-stepping, with zero
	// steady-state allocations on the hint path.
	retryFailed := retrySpeedupIO < 1.5 || stallIO.AllocsPerOp > 0
	if retryFailed {
		rep.RetryGate = fmt.Sprintf("FAIL: stall-heavy inorder speedup %.2fx (want >= 1.5x), %d allocs/op (want 0)",
			retrySpeedupIO, stallIO.AllocsPerOp)
	} else {
		rep.RetryGate = fmt.Sprintf("PASS: stall-heavy inorder runs %.1fx faster on refusal hints (ooo %.1fx), 0 allocs/op",
			retrySpeedupIO, retrySpeedupO3)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	os.Stdout.Write(data)
	if gateFailed {
		fmt.Fprintln(os.Stderr, "mlbench:", rep.AllocGate)
	}
	if warmFailed {
		fmt.Fprintln(os.Stderr, "mlbench:", rep.WarmGate)
	}
	if retryFailed {
		fmt.Fprintln(os.Stderr, "mlbench:", rep.RetryGate)
	}
	if gateFailed || warmFailed || retryFailed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlbench:", err)
	os.Exit(1)
}

module microlib

go 1.24

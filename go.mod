module microlib

go 1.22

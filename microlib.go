// Package microlib is an open library of modular micro-architecture
// simulator components, reproducing "MicroLib: A Case for the
// Quantitative Comparison of Micro-Architecture Mechanisms"
// (Gracia Pérez, Mouchard, Temam — MICRO 2004).
//
// The library provides:
//
//   - a detailed, pluggable memory hierarchy (pipelined caches with
//     finite MSHRs and port arbitration, split buses, an SDRAM with
//     bank/row timing and scheduling) and two host processor models
//     (an out-of-order superscalar and a scalar in-order core);
//   - twelve published hardware data-cache optimizations implemented
//     as interchangeable mechanism modules (tagged prefetching,
//     victim cache, stride prefetching, Markov prefetching, frequent
//     value cache, dead-block correlating prefetching, timekeeping,
//     content-directed prefetching, tag-correlating prefetching,
//     global history buffer, and combinations);
//   - 26 synthetic SPEC CPU2000 workload models with a memory value
//     oracle, plus SimPoint-style trace selection;
//   - the paper's full quantitative-comparison harness: speedup
//     grids, rankings, winner-subset analysis, CACTI/XCACTI-style
//     cost and power models, and one experiment driver per table and
//     figure of the evaluation.
//
// Quick start:
//
//	res, err := microlib.Run(microlib.NewOptions("gzip", "GHB"))
//	if err != nil { ... }
//	fmt.Printf("IPC %.3f\n", res.IPC)
//
// See the examples/ directory for runnable programs and DESIGN.md
// for the system inventory.
package microlib

import (
	"context"
	"fmt"
	"io"
	"strings"

	"microlib/internal/cache"
	"microlib/internal/campaign"
	"microlib/internal/cfgreg"
	"microlib/internal/core"
	"microlib/internal/cpu"
	"microlib/internal/experiments"
	"microlib/internal/fault"
	"microlib/internal/hier"
	"microlib/internal/runner"
	"microlib/internal/telemetry"
	"microlib/internal/workload"
)

// Options selects one simulation (benchmark, mechanism, hierarchy,
// trace window). See NewOptions for sensible defaults.
type Options = runner.Options

// Result is the outcome of one simulation: IPC plus per-level cache,
// memory and mechanism-hardware statistics.
type Result = runner.Result

// HierConfig describes the memory hierarchy (Table 1 defaults via
// DefaultHierarchy).
type HierConfig = hier.Config

// CPUConfig describes the host core (Table 1 defaults via
// DefaultCPU).
type CPUConfig = cpu.Config

// MemoryKind selects the main-memory model.
type MemoryKind = hier.MemoryKind

// Memory model choices (the paper's Figure 8 compares all three).
const (
	MemSDRAM   = hier.MemSDRAM
	MemConst70 = hier.MemConst70
	MemSDRAM70 = hier.MemSDRAM70
)

// BaseMechanism names the unmodified hierarchy.
const BaseMechanism = runner.BaseName

// NewOptions returns the Table 1 system with the standard scaled
// trace budget, ready to Run.
func NewOptions(bench, mechanism string) Options {
	return runner.DefaultOptions(bench, mechanism)
}

// Run executes one simulation.
func Run(opts Options) (Result, error) { return runner.Run(opts) }

// DefaultHierarchy returns the paper's Table 1 memory system.
func DefaultHierarchy() HierConfig { return hier.DefaultConfig() }

// DefaultCPU returns the paper's Table 1 processor core.
func DefaultCPU() CPUConfig { return cpu.DefaultConfig() }

// Benchmarks returns the 26 synthetic SPEC CPU2000 benchmark names.
func Benchmarks() []string { return workload.Names() }

// Mechanisms returns the registered mechanism names.
func Mechanisms() []string { return core.Names() }

// MechDescription documents a registered mechanism (Table 2 row).
type MechDescription = core.Description

// DescribeMechanism returns a mechanism's registry entry.
func DescribeMechanism(name string) (MechDescription, bool) { return core.Describe(name) }

// MechanismDescriptions lists all registered mechanisms in
// publication order.
func MechanismDescriptions() []MechDescription { return core.Descriptions() }

// --- mechanism development API ---
// A custom mechanism is registered with RegisterMechanism and
// attaches itself to the caches in MechEnv by implementing any of
// the hook interfaces below; see examples/custommech.

// MechEnv is the environment a mechanism factory receives.
type MechEnv = core.Env

// MechParams carries per-mechanism integer options.
type MechParams = core.Params

// Mechanism is the interface every registered module satisfies.
type Mechanism = core.Mechanism

// MechFactory builds a mechanism in an environment.
type MechFactory = core.Factory

// HWTable describes one SRAM structure a mechanism adds (consumed by
// the cost/power models).
type HWTable = core.HWTable

// Cache is one level of the hierarchy; mechanisms attach to it and
// issue prefetches through it.
type Cache = cache.Cache

// AccessEvent is the demand-access notification mechanisms observe.
type AccessEvent = cache.AccessEvent

// CacheStats are per-cache counters.
type CacheStats = cache.Stats

// RegisterMechanism installs a custom mechanism factory; it can then
// be selected by name in Options.Mechanism.
func RegisterMechanism(desc MechDescription, f MechFactory) { core.Register(desc, f) }

// --- config-field registry ---
// Every tunable knob of the simulated system is addressable by a
// dotted path ("hier.l1d.size", "cpu.ruu", "hier.sdram.cas-latency"):
// settable on an Options value (the CLIs' repeatable -set flag),
// pinnable in a campaign spec ("set"), and sweepable as a campaign
// axis ("fields"). `mlcampaign paths` prints the full table.

// ConfigField describes one registered config field (path, kind,
// enum values, documentation).
type ConfigField = cfgreg.Field

// ConfigFields returns every registered config field, sorted by path.
func ConfigFields() []ConfigField { return cfgreg.Fields() }

// ConfigPaths returns every registered dotted path, sorted.
func ConfigPaths() []string { return cfgreg.Paths() }

// SetOptionField sets one registry config field on an Options value,
// running the field's own validation.
func SetOptionField(o *Options, path, value string) error {
	return cfgreg.Set(cfgreg.Target{Hier: &o.Hier, CPU: &o.CPU}, path, value)
}

// GetOptionField reads one registry config field off an Options
// value, in the canonical string form SetOptionField accepts.
func GetOptionField(o *Options, path string) (string, error) {
	return cfgreg.Get(cfgreg.Target{Hier: &o.Hier, CPU: &o.CPU}, path)
}

// SetFlags collects the CLIs' repeatable `-set path=value` overrides
// (register with flag.Var); the path=value syntax is checked as the
// flag is parsed, the path and value themselves when applied.
type SetFlags []string

// String implements flag.Value.
func (s *SetFlags) String() string { return strings.Join(*s, " ") }

// Set implements flag.Value.
func (s *SetFlags) Set(v string) error {
	if _, _, ok := strings.Cut(v, "="); !ok {
		return fmt.Errorf("want path=value")
	}
	*s = append(*s, v)
	return nil
}

// Apply writes the overrides onto an Options value, in flag order.
func (s SetFlags) Apply(o *Options) error {
	for _, kv := range s {
		path, value, _ := strings.Cut(kv, "=")
		if err := SetOptionField(o, path, value); err != nil {
			return err
		}
	}
	return nil
}

// Pin folds the overrides into a campaign spec's "set" section (the
// CLI wins over the file); they are validated at plan time.
func (s SetFlags) Pin(spec *CampaignSpec) {
	for _, kv := range s {
		path, value, _ := strings.Cut(kv, "=")
		PinCampaignField(spec, path, value)
	}
}

// QueueOverrideConflictPaths are the registry paths a nonzero
// prefetch-queue override (Options.QueueOverride, microsim -queue,
// a campaign's queues axis) force-clobbers after mechanism attach;
// CLIs reject combining them with an override.
func QueueOverrideConflictPaths() []string { return campaign.QueueOverridePaths() }

// Map returns the overrides as a path→value map (later flags win),
// the form ExperimentRunner.SetFields takes.
func (s SetFlags) Map() map[string]string {
	if len(s) == 0 {
		return nil
	}
	out := make(map[string]string, len(s))
	for _, kv := range s {
		path, value, _ := strings.Cut(kv, "=")
		out[path] = value
	}
	return out
}

// --- experiment harness ---

// ExperimentRunner drives the paper's tables and figures.
type ExperimentRunner = experiments.Runner

// Report is one regenerated artifact.
type Report = experiments.Report

// NewExperiments returns the standard experiment configuration.
func NewExperiments() *ExperimentRunner { return experiments.Default() }

// RunExperiment regenerates one table or figure by id ("fig4",
// "table6", ...); Experiments lists the ids.
func RunExperiment(r *ExperimentRunner, id string) (Report, error) {
	return experiments.Run(r, id)
}

// Experiments returns the available experiment ids.
func Experiments() []string { return experiments.IDs() }

// --- campaign engine ---
// A campaign is a declarative simulation sweep: a JSON spec names
// the axes (benchmarks, mechanisms, hierarchy variants, memory
// models, cores, queue overrides, parameter sets, trace-selection
// policies, budgets, seeds), the engine compiles them into a single
// axis table, expands the cross-product into a deterministic plan,
// executes it on a worker pool with a persistent fingerprint-keyed
// result cache, and aggregates speedup grids, rankings and
// confidence intervals per scenario. See cmd/mlcampaign,
// examples/campaign, and examples/campaign/figures for the paper's
// own figures as shipped specs.

// CampaignSpec declares a simulation campaign.
type CampaignSpec = campaign.Spec

// CampaignWorkload defines one campaign-local custom workload: an
// inline synthetic profile or a recorded trace file, swept by name
// on the benchmarks axis but cached by content.
type CampaignWorkload = campaign.WorkloadSpec

// WorkloadProfile is the static description of a synthetic workload
// (the built-in benchmarks are instances of it); its JSON form is
// the inline-profile section of a campaign spec.
type WorkloadProfile = workload.Profile

// WorkloadPattern parameterizes one access pattern of a profile.
type WorkloadPattern = workload.PatternSpec

// WorkloadPatternKind selects an access-pattern state machine.
type WorkloadPatternKind = workload.PatternKind

// Access-pattern kinds for custom workload profiles (their String
// forms are the JSON names).
const (
	PatHot      = workload.PatHot
	PatSeq      = workload.PatSeq
	PatStride   = workload.PatStride
	PatTile     = workload.PatTile
	PatChase    = workload.PatChase
	PatTour     = workload.PatTour
	PatRand     = workload.PatRand
	PatConflict = workload.PatConflict
)

// WorkloadPhase is one program phase of a profile.
type WorkloadPhase = workload.PhaseSpec

// CustomWorkload is a runner-level workload source (inline profile
// or trace file) assignable to Options.Workload.
type CustomWorkload = runner.Workload

// NewProfileWorkload wraps a validated inline profile as a custom
// workload for Options.Workload.
func NewProfileWorkload(p WorkloadProfile) (*CustomWorkload, error) {
	return runner.NewProfileWorkload(p)
}

// NewTraceWorkload opens and hashes a recorded trace file as a
// custom workload for Options.Workload.
func NewTraceWorkload(path string) (*CustomWorkload, error) {
	return runner.NewTraceWorkload(path)
}

// ParseWorkloadProfile decodes and validates a profile's JSON form.
func ParseWorkloadProfile(data []byte) (WorkloadProfile, error) {
	return workload.ParseProfile(data)
}

// WorkloadPatternKinds returns the valid pattern-kind names of the
// profile JSON form.
func WorkloadPatternKinds() []string { return workload.PatternKindNames() }

// RecordTrace captures insts instructions of a workload — a built-in
// benchmark or a spec-defined custom workload — to w in the binary
// trace format. Pass a zero CampaignSpec for built-ins.
func RecordTrace(spec CampaignSpec, name string, seed, insts uint64, w io.Writer) (uint64, error) {
	return campaign.Record(spec, name, seed, insts, w)
}

// TraceRecordOptions selects the execution window a recording
// captures: an explicit skip offset, or a selection policy
// ("simpoint", "skip:N") resolved at record time.
type TraceRecordOptions = campaign.RecordOptions

// RecordTraceWindow is RecordTrace with a trace window: the recording
// starts after the resolved skip offset, so the trace captures a
// chosen execution region rather than the stream prefix. Replaying it
// is bit-identical to a live run skipped to the same offset.
func RecordTraceWindow(spec CampaignSpec, name string, opts TraceRecordOptions, w io.Writer) (uint64, error) {
	return campaign.RecordWindow(spec, name, opts, w)
}

// CampaignFieldValue is one config-field value in a campaign spec's
// "set" or "fields" sections (the raw JSON scalar's token text).
type CampaignFieldValue = campaign.FieldValue

// PinCampaignField pins a registry config field for every cell of a
// campaign spec (the spec form of the CLIs' -set flag). The path and
// value are validated when the spec is normalized/planned.
func PinCampaignField(spec *CampaignSpec, path, value string) {
	if spec.Set == nil {
		spec.Set = map[string]CampaignFieldValue{}
	}
	spec.Set[path] = CampaignFieldValue(value)
}

// CampaignPlan is the deterministic expansion of a spec.
type CampaignPlan = campaign.Plan

// CampaignCell is one fully-resolved simulation of a plan.
type CampaignCell = campaign.Cell

// CampaignSummary is the aggregated outcome of a campaign run, with
// Text/CSV/JSON export.
type CampaignSummary = campaign.Summary

// CampaignProgress reports one finished cell.
type CampaignProgress = campaign.Progress

// CampaignStats counts what a campaign execution did (simulated vs
// served from cache).
type CampaignStats = campaign.SchedulerStats

// CampaignConfig configures RunCampaign.
type CampaignConfig = campaign.RunConfig

// CampaignCache is the persistent on-disk result cache.
type CampaignCache = campaign.DiskCache

// ParseCampaignSpec decodes a JSON campaign spec.
func ParseCampaignSpec(data []byte) (CampaignSpec, error) { return campaign.ParseSpec(data) }

// LoadCampaignSpec reads and parses a JSON campaign spec file.
func LoadCampaignSpec(path string) (CampaignSpec, error) { return campaign.LoadSpec(path) }

// NewCampaignPlan normalizes and expands a spec into its cell plan.
func NewCampaignPlan(spec CampaignSpec) (*CampaignPlan, error) { return campaign.NewPlan(spec) }

// CampaignPruneOptions selects which cached campaign cells to delete.
type CampaignPruneOptions = campaign.PruneOptions

// CampaignPruneResult reports what PruneCampaignCache removed.
type CampaignPruneResult = campaign.PruneResult

// PruneCampaignCache garbage-collects a campaign result cache by age
// and/or reachability from a plan's cell fingerprints.
func PruneCampaignCache(c *CampaignCache, opts CampaignPruneOptions) (CampaignPruneResult, error) {
	return campaign.Prune(c, opts)
}

// OpenCampaignCache creates (if needed) and opens a result cache
// directory.
func OpenCampaignCache(dir string) (*CampaignCache, error) { return campaign.OpenDiskCache(dir) }

// CampaignMemories returns the valid memory-model names for a
// campaign spec.
func CampaignMemories() []string { return campaign.MemoryNames() }

// CampaignCores returns the valid host-core names for a campaign
// spec.
func CampaignCores() []string { return campaign.CoreNames() }

// CampaignHiers returns the valid hierarchy-variant names for a
// campaign spec's "hiers" axis.
func CampaignHiers() []string { return hier.VariantNames() }

// CampaignSelections returns the valid trace-selection policy names
// for a campaign spec's "selections" axis (the explicit-offset form
// "skip:N" is also accepted).
func CampaignSelections() []string { return campaign.SelectionNames() }

// CampaignAxisValue is one coordinate of a cell or scenario: an axis
// name and the value taken on it.
type CampaignAxisValue = campaign.AxisValue

// CampaignAxis describes one expanded axis of a plan.
type CampaignAxis = campaign.AxisInfo

// CampaignParamSet is one value of a spec's "paramsets" axis: a
// named bundle of per-mechanism parameter overrides.
type CampaignParamSet = campaign.ParamSetSpec

// CampaignScenario is one aggregated sub-experiment of a campaign.
type CampaignScenario = campaign.Scenario

// CampaignCellResult is the serializable outcome of one cell.
type CampaignCellResult = campaign.CellResult

// CampaignCellCache serves and persists finished cells by
// fingerprint; DiskCache, MemCache and LayeredCache implement it.
type CampaignCellCache = campaign.CellCache

// RunCampaign executes a whole campaign: plan, schedule, aggregate.
// Canceling ctx stops the sweep but keeps finished cells in the
// cache, so rerunning with the same CacheDir resumes incrementally.
func RunCampaign(ctx context.Context, spec CampaignSpec, cfg CampaignConfig) (*CampaignSummary, error) {
	return campaign.Execute(ctx, spec, cfg)
}

// --- fault containment: taxonomy, retry, resume, injection ---------

// CampaignErrKind classifies a cell failure: "model", "panic",
// "timeout" or "io". Deterministic kinds are never retried; transient
// ones may be.
type CampaignErrKind = campaign.ErrKind

// The failure taxonomy kinds.
const (
	CampaignErrModel   = campaign.KindModel
	CampaignErrPanic   = campaign.KindPanic
	CampaignErrTimeout = campaign.KindTimeout
	CampaignErrIO      = campaign.KindIO
)

// CampaignCellError is a classified cell failure (Stack is set for
// recovered simulation panics).
type CampaignCellError = campaign.CellError

// CampaignRetryPolicy bounds transient-failure retries with capped
// exponential backoff.
type CampaignRetryPolicy = campaign.RetryPolicy

// CampaignDegradation records a non-fatal infrastructure failure a
// campaign survived (unpersisted cache entry, quarantined corrupt
// cell, failed back-fill).
type CampaignDegradation = campaign.Degradation

// CampaignRetryInfo describes one transient-failure retry, reported
// to CampaignConfig.OnRetry before its backoff.
type CampaignRetryInfo = campaign.RetryInfo

// CampaignStallReport is the scheduler watchdog's flag: no cell has
// finished for longer than the stall threshold.
type CampaignStallReport = campaign.StallReport

// CampaignResumeInfo describes what ResumeCampaign reconstructed
// before rerunning.
type CampaignResumeInfo = campaign.ResumeInfo

// ResumeCampaign continues a crashed or interrupted campaign from its
// journal: the embedded spec is re-expanded and fingerprint-verified,
// completed cells come from the cache, deterministic failures replay
// from the journal, and only the remainder simulates. New events are
// appended to the same journal file.
func ResumeCampaign(ctx context.Context, journalPath string, cfg CampaignConfig) (*CampaignSummary, CampaignResumeInfo, error) {
	return campaign.Resume(ctx, journalPath, cfg)
}

// FaultInjector is a deterministic fault-injection schedule for the
// campaign engine's chaos testing (see CampaignConfig.Faults and the
// mlcampaign -faults flag). A nil injector never fires.
type FaultInjector = fault.Injector

// NewFaultInjector returns an empty injector keyed by seed; arm
// points with Enable/EnableKeys/Limit.
func NewFaultInjector(seed uint64) *FaultInjector { return fault.New(seed) }

// ParseFaultSpec builds an injector from the -faults flag syntax:
// comma-separated point=rate or point=rate@limit entries, e.g.
// "cell.panic=1@1,cache.put.error=0.5".
func ParseFaultSpec(spec string, seed uint64) (*FaultInjector, error) {
	return fault.Parse(spec, seed)
}

// FaultPoints returns the names of every wired injection point.
func FaultPoints() []string {
	ps := fault.Points()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = string(p)
	}
	return names
}

// --- telemetry: interval series, run journals, live endpoint --------

// TelemetryInterval is one time-resolved slice of a simulation: the
// exact counter deltas between two sampling boundaries. Enable the
// sampler with Options.Interval + Options.IntervalSink; summed
// deltas reproduce the whole-run counters bit for bit.
type TelemetryInterval = telemetry.Interval

// TelemetryBusCounters are per-interconnect counter deltas.
type TelemetryBusCounters = telemetry.BusCounters

// SumIntervals folds an interval series into one interval covering
// its whole span.
func SumIntervals(ivs []TelemetryInterval) TelemetryInterval { return telemetry.Sum(ivs) }

// WriteIntervals renders an interval time series as "text", "csv" or
// "json".
func WriteIntervals(w io.Writer, format string, ivs []TelemetryInterval) error {
	return telemetry.WriteIntervals(w, format, ivs)
}

// IntervalFormats lists the interval series output formats.
func IntervalFormats() []string { return telemetry.FormatNames() }

// Metrics is an expvar-style registry of live gauges, served by
// ServeMetrics at /metrics alongside net/http/pprof.
type Metrics = telemetry.Metrics

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return telemetry.NewMetrics() }

// MetricsServer is a running live metrics/pprof endpoint.
type MetricsServer = telemetry.Server

// ServeMetrics binds addr and serves m (plus pprof) in the
// background; it returns once the listener is bound.
func ServeMetrics(addr string, m *Metrics) (*MetricsServer, error) {
	return telemetry.Serve(addr, m)
}

// CampaignLiveStats is the mid-run view of a campaign the scheduler
// keeps updated; pass one in CampaignConfig.Live and snapshot it from
// a progress display or metrics endpoint.
type CampaignLiveStats = campaign.LiveStats

// CampaignLiveSnapshot is one consistent reading of a running
// campaign, with derived rates (cells/s, insts/s, ETA, utilization).
type CampaignLiveSnapshot = campaign.LiveSnapshot

// CampaignJournalEvent is one line of a campaign run journal.
type CampaignJournalEvent = campaign.JournalEvent

// CampaignJournalStatus is the digest of a run journal.
type CampaignJournalStatus = campaign.JournalStatus

// TornTailError marks a JSONL stream whose final line is malformed —
// the signature of a writer killed mid-record. ReadCampaignJournal
// returns the intact events alongside it, so status and resume work
// on exactly the journals crashes leave behind.
type TornTailError = telemetry.TornTailError

// ReadCampaignJournal parses a JSONL run journal back into events. A
// torn final line comes back as the decoded prefix plus a
// *TornTailError; any other malformed line is a hard error.
func ReadCampaignJournal(r io.Reader) ([]CampaignJournalEvent, error) {
	return campaign.ReadJournal(r)
}

// SummarizeCampaignJournal digests journal events into the status
// report `mlcampaign status` prints.
func SummarizeCampaignJournal(evs []CampaignJournalEvent) (CampaignJournalStatus, error) {
	return campaign.SummarizeJournal(evs)
}

// CampaignCacheCounters is a snapshot of a disk cache's access
// statistics (hits, misses, bytes moved) since it was opened.
type CampaignCacheCounters = campaign.CacheCounters

// RegisterCampaignMetrics exposes a running campaign's live stats and
// disk-cache counters on a metrics registry (see CampaignConfig's
// Metrics field, which RunCampaign wires automatically).
func RegisterCampaignMetrics(m *Metrics, live *CampaignLiveStats, cache *CampaignCache) {
	campaign.RegisterCampaignMetrics(m, live, cache)
}
